package core

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// refHeavyHitters returns the items with count ≥ threshold.
func refHeavyHitters(t *testing.T, ups []stream.Update, u uint64, threshold int64) []HeavyHitter {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	var out []HeavyHitter
	for i, c := range a {
		if c >= threshold {
			out = append(out, HeavyHitter{Index: uint64(i), Count: c})
		}
	}
	return out
}

func runHeavyHitters(t *testing.T, u uint64, ups []stream.Update, phi float64, seed uint64) ([]HeavyHitter, int64, Stats, error) {
	t.Helper()
	proto, err := NewHeavyHitters(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(seed)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(phi); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(phi); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(p, v)
	if err != nil {
		return nil, 0, stats, err
	}
	hh, thr, err := v.Result()
	return hh, thr, stats, err
}

func TestHeavyHittersEndToEnd(t *testing.T) {
	const u = 1 << 10
	rng := field.NewSplitMix64(301)
	ups, err := stream.Zipf(u, 20000, 1.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0.01, 0.05, 0.2} {
		hh, thr, _, err := runHeavyHitters(t, u, ups, phi, 302)
		if err != nil {
			t.Fatalf("φ=%v rejected: %v", phi, err)
		}
		want := refHeavyHitters(t, ups, u, thr)
		if len(hh) != len(want) {
			t.Fatalf("φ=%v: %d heavy hitters, want %d", phi, len(hh), len(want))
		}
		for i := range want {
			if hh[i] != want[i] {
				t.Fatalf("φ=%v hitter %d: %+v, want %+v", phi, i, hh[i], want[i])
			}
		}
	}
}

func TestHeavyHittersNoHeavyItems(t *testing.T) {
	const u = 256
	// Perfectly flat stream: every item occurs once, none reaches φn.
	var ups []stream.Update
	for i := uint64(0); i < u; i++ {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
	}
	hh, thr, _, err := runHeavyHitters(t, u, ups, 0.05, 303)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if thr != 13 { // ceil(0.05·256)
		t.Fatalf("threshold = %d, want 13", thr)
	}
	if len(hh) != 0 {
		t.Fatalf("expected no heavy hitters, got %+v", hh)
	}
}

func TestHeavyHittersSingleDominator(t *testing.T) {
	const u = 128
	ups := []stream.Update{{Index: 77, Delta: 1000}}
	for i := uint64(0); i < 50; i++ {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
	}
	hh, _, _, err := runHeavyHitters(t, u, ups, 0.5, 304)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if len(hh) != 1 || hh[0].Index != 77 || hh[0].Count != 1000 {
		t.Fatalf("heavy hitters = %+v", hh)
	}
}

func TestHeavyHittersEmptyStream(t *testing.T) {
	hh, _, _, err := runHeavyHitters(t, 64, nil, 0.1, 305)
	if err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
	if len(hh) != 0 {
		t.Fatalf("heavy hitters = %+v", hh)
	}
}

// TestHeavyHittersCommunication: the proof is O(1/φ · log u) words.
func TestHeavyHittersCommunication(t *testing.T) {
	const u = 1 << 12
	rng := field.NewSplitMix64(306)
	ups, err := stream.Zipf(u, 50000, 1.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	phi := 0.02
	_, _, stats, err := runHeavyHitters(t, u, ups, phi, 307)
	if err != nil {
		t.Fatal(err)
	}
	d := 12
	// Each level reveals ≤ 2/φ + 2 nodes of 3 words; plus 2(d-1) challenge
	// words.
	bound := d*(3*(2*int(1/phi)+2)) + 2*(d-1)
	if stats.CommWords() > bound {
		t.Errorf("communication %d words exceeds O(1/φ·log u) bound %d", stats.CommWords(), bound)
	}
}

// TestHeavyHittersOmissionCaught: a prover that hides one heavy hitter
// (rewriting its subtree as light) must be rejected.
func TestHeavyHittersOmissionCaught(t *testing.T) {
	const u = 256
	ups := []stream.Update{
		{Index: 10, Delta: 500}, {Index: 200, Delta: 400}, {Index: 3, Delta: 40},
	}
	proto, err := NewHeavyHitters(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(308)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(0.3); err != nil { // threshold = 282
		t.Fatal(err)
	}
	if err := p.SetQuery(0.3); err != nil {
		t.Fatal(err)
	}
	// Tamper: wherever index 200's subtree appears, understate its count.
	tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
		for i := 0; i+1 < len(m.Ints); i += 2 {
			if m.Ints[i+1] >= 282 && m.Ints[i] != 10 && r > 0 {
				m.Ints[i+1] = 1
			}
		}
		return m
	}}
	if _, err := Run(tp, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("omitted heavy hitter not rejected: %v", err)
	}
}

// TestHeavyHittersInflationCaught: inflating a count to fake a heavy
// hitter breaks the count-augmented hash chain.
func TestHeavyHittersInflationCaught(t *testing.T) {
	const u = 256
	rng := field.NewSplitMix64(309)
	ups, err := stream.Zipf(u, 5000, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewHeavyHitters(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(0.05); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(0.05); err != nil {
		t.Fatal(err)
	}
	tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
		if r == 0 && len(m.Ints) >= 2 {
			m.Ints[1] += 5 // inflate the first leaf count
		}
		return m
	}}
	if _, err := Run(tp, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("inflated count not rejected: %v", err)
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		phi  float64
		n    int64
		want int64
	}{
		{0.1, 100, 10}, {0.1, 101, 11}, {0.5, 3, 2}, {0.001, 10, 1}, {1, 7, 7},
	}
	for _, c := range cases {
		if got := Threshold(c.phi, c.n); got != c.want {
			t.Errorf("Threshold(%v,%d) = %d, want %d", c.phi, c.n, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------
// Frequency-based functions

func runF0(t *testing.T, u uint64, ups []stream.Update, phi float64, seed uint64) (field.Elem, Stats, error) {
	t.Helper()
	proto, err := NewF0(f61, u, phi)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(seed)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	stats, err := Run(p, v)
	if err != nil {
		return 0, stats, err
	}
	res, err := v.Result()
	return res, stats, err
}

func TestF0EndToEnd(t *testing.T) {
	const u = 256
	rng := field.NewSplitMix64(310)
	ups, err := stream.Zipf(u, 1000, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := runF0(t, u, ups, 0, 311) // default φ = u^{-1/2}
	if err != nil {
		t.Fatalf("F0 rejected: %v", err)
	}
	a, _ := stream.Apply(ups, u)
	var want field.Elem
	for _, c := range a {
		if c != 0 {
			want++
		}
	}
	if got != want {
		t.Fatalf("F0 = %d, want %d", got, want)
	}
}

func TestF0AllDistinct(t *testing.T) {
	const u = 128
	var ups []stream.Update
	for i := uint64(0); i < u; i += 2 {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
	}
	got, _, err := runF0(t, u, ups, 0, 312)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if got != 64 {
		t.Fatalf("F0 = %d, want 64", got)
	}
}

func TestF0WithHeavySkew(t *testing.T) {
	// One giant item plus a few singletons: exercises both the heavy
	// removal (F' path) and the residual sum-check.
	const u = 64
	ups := []stream.Update{{Index: 5, Delta: 300}, {Index: 9, Delta: 1}, {Index: 60, Delta: 2}}
	got, _, err := runF0(t, u, ups, 0, 313)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if got != 3 {
		t.Fatalf("F0 = %d, want 3", got)
	}
}

func TestInverseDistributionEndToEnd(t *testing.T) {
	const u = 256
	rng := field.NewSplitMix64(314)
	ups, err := stream.Zipf(u, 2000, 1.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := stream.Apply(ups, u)
	for _, k := range []int64{1, 2, 3, 7} {
		proto, err := NewInverseDistribution(f61, u, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		rng2 := field.NewSplitMix64(315)
		v := proto.NewVerifier(rng2)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if _, err := Run(p, v); err != nil {
			t.Fatalf("inverse-dist k=%d rejected: %v", k, err)
		}
		var want field.Elem
		for _, c := range a {
			if c == k {
				want++
			}
		}
		got, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("inverse-dist k=%d = %d, want %d", k, got, want)
		}
	}
	if _, err := NewInverseDistribution(f61, u, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestFrequencyBasedTamper: tampering either phase (heavy-hitter counts
// or sum-check evaluations) is caught.
func TestFrequencyBasedTamper(t *testing.T) {
	const u = 128
	rng := field.NewSplitMix64(316)
	ups, err := stream.Zipf(u, 1000, 1.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range []int{0, 3, 9, 12} {
		proto, err := NewF0(f61, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng2 := field.NewSplitMix64(317)
		v := proto.NewVerifier(rng2)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		hit := false
		tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
			if r == round && len(m.Elems) > 0 {
				m.Elems[0] = f61.Add(m.Elems[0], 1)
				hit = true
			}
			return m
		}}
		_, err = Run(tp, v)
		if hit && !errors.Is(err, ErrRejected) {
			t.Fatalf("tamper at round %d not rejected: %v", round, err)
		}
		if !hit && err != nil {
			t.Fatalf("untouched round %d rejected: %v", round, err)
		}
	}
}

// TestFrequencyBasedWrongStream: prover missing one update is caught by
// one of the two phases.
func TestFrequencyBasedWrongStream(t *testing.T) {
	const u = 128
	rng := field.NewSplitMix64(318)
	ups, err := stream.Zipf(u, 500, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewF0(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups[:len(ups)-1])
	if _, err := Run(p, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("not rejected: %v", err)
	}
}

// ---------------------------------------------------------------------
// Fmax

func TestFmaxEndToEnd(t *testing.T) {
	const u = 256
	rng := field.NewSplitMix64(319)
	ups, err := stream.Zipf(u, 3000, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewFmax(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if _, err := Run(p, v); err != nil {
		t.Fatalf("Fmax rejected: %v", err)
	}
	a, _ := stream.Apply(ups, u)
	var want int64
	for _, c := range a {
		if c > want {
			want = c
		}
	}
	got, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Fmax = %d, want %d", got, want)
	}
}

func TestFmaxFlatStream(t *testing.T) {
	// Maximum is 1 (all distinct): lb=1 and the residual check must pass.
	const u = 64
	var ups []stream.Update
	for i := uint64(0); i < 40; i++ {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
	}
	proto, err := NewFmax(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(320)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if _, err := Run(p, v); err != nil {
		t.Fatalf("rejected: %v", err)
	}
	got, err := v.Result()
	if err != nil || got != 1 {
		t.Fatalf("Fmax = %d, %v; want 1", got, err)
	}
}

// TestFmaxUnderclaimCaught: claiming a smaller maximum leaves an item
// above the bound, which the h-check counts.
func TestFmaxUnderclaimCaught(t *testing.T) {
	const u = 64
	ups := []stream.Update{{Index: 7, Delta: 9}, {Index: 12, Delta: 5}, {Index: 30, Delta: 1}}
	proto, err := NewFmax(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(321)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	// The dishonest prover pretends the stream topped out at 5: it
	// observes a doctored stream where item 7 has count 5.
	doctored := []stream.Update{{Index: 7, Delta: 5}, {Index: 12, Delta: 5}, {Index: 30, Delta: 1}}
	observeAll(t, p, doctored)
	if _, err := Run(p, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("underclaimed Fmax not rejected: %v", err)
	}
}

func TestFmaxEmptyStreamProverErrors(t *testing.T) {
	proto, err := NewFmax(f61, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := proto.NewProver()
	if _, err := p.Open(); err == nil {
		t.Error("empty-stream Fmax accepted by prover")
	}
}

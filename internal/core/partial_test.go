package core

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
	"repro/internal/sumcheck"
)

// buildElems converts replayed updates into the dense field table.
func buildElems(t *testing.T, ups []stream.Update, u uint64) []field.Elem {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]field.Elem, u)
	for i, v := range a {
		out[i] = f61.FromInt64(v)
	}
	return out
}

// splitSession drives S slice-owner sessions through a SplitAggregator,
// presenting the single-prover ProverSession interface to a verifier.
type splitSession struct {
	t      *testing.T
	agg    *SplitAggregator
	owners []*PartialProver
}

func (s *splitSession) Open() (Msg, error) {
	parts := make([]Msg, len(s.owners))
	for k, o := range s.owners {
		m, err := o.Open()
		if err != nil {
			return Msg{}, err
		}
		parts[k] = m
	}
	return s.agg.Open(parts)
}

func (s *splitSession) Step(ch Msg) (Msg, error) {
	if s.agg.Broadcast() {
		parts := make([]Msg, len(s.owners))
		for k, o := range s.owners {
			m, err := o.Step(ch)
			if err != nil {
				return Msg{}, err
			}
			parts[k] = m
		}
		return s.agg.Collect(parts)
	}
	if len(ch.Elems) != 1 {
		s.t.Fatalf("challenge with %d elems", len(ch.Elems))
	}
	return s.agg.Next(ch.Elems[0])
}

// newSplitFk builds S slice owners plus aggregator for an Fk query.
func newSplitFk(t *testing.T, u uint64, k, slices, workers int, table []field.Elem, version uint64) *splitSession {
	t.Helper()
	proto, err := NewFk(f61, u, k)
	if err != nil {
		t.Fatal(err)
	}
	proto.Workers = workers
	agg, err := NewSplitAggregator(f61, u, slices, sumcheck.Power{K: k}, workers)
	if err != nil {
		t.Fatal(err)
	}
	width := proto.Params.U / uint64(slices)
	owners := make([]*PartialProver, slices)
	for s := range owners {
		lo, hi := uint64(s)*width, uint64(s+1)*width
		o, err := proto.NewPartialProverFromTable(table[lo:hi], lo, hi, version)
		if err != nil {
			t.Fatal(err)
		}
		owners[s] = o
	}
	return &splitSession{t: t, agg: agg, owners: owners}
}

// TestSplitFkBitIdentical runs the distributed Fk conversation against
// the ordinary verifier and checks every message matches the
// single-prover transcript bit for bit.
func TestSplitFkBitIdentical(t *testing.T) {
	const u = 1 << 7
	rng := field.NewSplitMix64(3)
	ups := stream.UniformDeltas(u, 500, rng)
	table := buildElems(t, ups, u)
	for _, k := range []int{2, 3} {
		for _, workers := range []int{0, 4} {
			proto, err := NewFk(f61, u, k)
			if err != nil {
				t.Fatal(err)
			}
			proto.Workers = workers
			// Reference transcript from the single-table prover.
			refP, err := proto.NewProverFromTable(table)
			if err != nil {
				t.Fatal(err)
			}
			ref := &recordingProver{inner: refP}
			refV := proto.NewVerifier(field.NewSplitMix64(77))
			for _, up := range ups {
				if err := refV.Observe(up); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := Run(ref, refV); err != nil {
				t.Fatalf("reference run rejected: %v", err)
			}
			refResult, err := refV.Result()
			if err != nil {
				t.Fatal(err)
			}
			for _, slices := range []int{1, 2, 4} {
				split := newSplitFk(t, u, k, slices, workers, table, 9)
				rec := &recordingProver{inner: split}
				v := proto.NewVerifier(field.NewSplitMix64(77))
				for _, up := range ups {
					if err := v.Observe(up); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := Run(rec, v); err != nil {
					t.Fatalf("k=%d w=%d S=%d: split run rejected: %v", k, workers, slices, err)
				}
				if got, _ := v.Result(); got != refResult {
					t.Fatalf("k=%d w=%d S=%d: result %d ≠ %d", k, workers, slices, got, refResult)
				}
				if split.agg.Version() != 9 {
					t.Fatalf("aggregator pinned version %d, want 9", split.agg.Version())
				}
				if len(rec.msgs) != len(ref.msgs) {
					t.Fatalf("k=%d w=%d S=%d: %d messages, want %d", k, workers, slices, len(rec.msgs), len(ref.msgs))
				}
				for j := range rec.msgs {
					got, want := rec.msgs[j], ref.msgs[j]
					if len(got.Ints) != 0 {
						t.Fatalf("k=%d w=%d S=%d msg %d: combined message leaked ints", k, workers, slices, j)
					}
					if len(got.Elems) != len(want.Elems) {
						t.Fatalf("k=%d w=%d S=%d msg %d: %d elems, want %d", k, workers, slices, j, len(got.Elems), len(want.Elems))
					}
					for c := range got.Elems {
						if got.Elems[c] != want.Elems[c] {
							t.Fatalf("k=%d w=%d S=%d msg %d elem %d: %d ≠ %d",
								k, workers, slices, j, c, got.Elems[c], want.Elems[c])
						}
					}
				}
			}
		}
	}
}

// TestSplitRangeSumBitIdentical does the same for RANGE-SUM, whose
// indicator table each slice materializes locally from the global
// range.
func TestSplitRangeSumBitIdentical(t *testing.T) {
	const u = 1 << 6
	rng := field.NewSplitMix64(5)
	ups := stream.UniformDeltas(u, 300, rng)
	table := buildElems(t, ups, u)
	const qL, qR = 7, 51
	proto, err := NewRangeSum(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	refP, err := proto.NewProverFromTable(table)
	if err != nil {
		t.Fatal(err)
	}
	if err := refP.SetQuery(qL, qR); err != nil {
		t.Fatal(err)
	}
	ref := &recordingProver{inner: refP}
	refV := proto.NewVerifier(field.NewSplitMix64(13))
	for _, up := range ups {
		if err := refV.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := refV.SetQuery(qL, qR); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ref, refV); err != nil {
		t.Fatalf("reference run rejected: %v", err)
	}
	for _, slices := range []int{1, 2, 4, 8} {
		agg, err := NewSplitAggregator(f61, u, slices, sumcheck.Product{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		width := proto.Params.U / uint64(slices)
		owners := make([]*PartialProver, slices)
		for s := range owners {
			lo, hi := uint64(s)*width, uint64(s+1)*width
			o, err := proto.NewPartialProverFromTable(table[lo:hi], lo, hi, 4, qL, qR)
			if err != nil {
				t.Fatal(err)
			}
			owners[s] = o
		}
		rec := &recordingProver{inner: &splitSession{t: t, agg: agg, owners: owners}}
		v := proto.NewVerifier(field.NewSplitMix64(13))
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				t.Fatal(err)
			}
		}
		if err := v.SetQuery(qL, qR); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(rec, v); err != nil {
			t.Fatalf("S=%d: split range-sum rejected: %v", slices, err)
		}
		if len(rec.msgs) != len(ref.msgs) {
			t.Fatalf("S=%d: %d messages, want %d", slices, len(rec.msgs), len(ref.msgs))
		}
		for j := range rec.msgs {
			for c := range rec.msgs[j].Elems {
				if rec.msgs[j].Elems[c] != ref.msgs[j].Elems[c] {
					t.Fatalf("S=%d msg %d elem %d differs", slices, j, c)
				}
			}
		}
	}
}

// TestSumcheckChallengesMatchVerifier pins the equivalence the
// router-side proof generator relies on: the challenge stream an
// interactive Fk or RangeSum verifier emits equals the coordinates of
// the point SumcheckChallenges samples from the same RNG state.
func TestSumcheckChallengesMatchVerifier(t *testing.T) {
	const u = 1 << 5
	ups := stream.UniformDeltas(u, 100, field.NewSplitMix64(21))
	table := buildElems(t, ups, u)
	want, err := SumcheckChallenges(f61, u, field.NewSplitMix64(55))
	if err != nil {
		t.Fatal(err)
	}
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != params.D {
		t.Fatalf("%d challenges, want %d", len(want), params.D)
	}

	collect := func(p ProverSession, v VerifierSession) []field.Elem {
		t.Helper()
		var got []field.Elem
		opening, err := p.Open()
		if err != nil {
			t.Fatal(err)
		}
		ch, done, err := v.Begin(opening)
		if err != nil {
			t.Fatal(err)
		}
		for !done {
			got = append(got, ch.Elems...)
			resp, err := p.Step(ch)
			if err != nil {
				t.Fatal(err)
			}
			ch, done, err = v.Step(resp)
			if err != nil {
				t.Fatal(err)
			}
		}
		return got
	}

	fk, err := NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	fkP, err := fk.NewProverFromTable(table)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range collect(fkP, seededFkVerifier(t, fk, ups)) {
		if ch != want[i] {
			t.Fatalf("Fk challenge %d: %d ≠ %d", i, ch, want[i])
		}
	}

	rs, err := NewRangeSum(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rsP, err := rs.NewProverFromTable(table)
	if err != nil {
		t.Fatal(err)
	}
	if err := rsP.SetQuery(2, 30); err != nil {
		t.Fatal(err)
	}
	rsV := rs.NewVerifier(field.NewSplitMix64(55))
	for _, up := range ups {
		if err := rsV.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := rsV.SetQuery(2, 30); err != nil {
		t.Fatal(err)
	}
	for i, ch := range collect(rsP, rsV) {
		if ch != want[i] {
			t.Fatalf("RangeSum challenge %d: %d ≠ %d", i, ch, want[i])
		}
	}
}

func seededFkVerifier(t *testing.T, fk *Fk, ups []stream.Update) *FkVerifier {
	t.Helper()
	v := fk.NewVerifier(field.NewSplitMix64(55))
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// TestSplitAggregatorVersionSkew checks the typed error on slice
// openings that disagree on the dataset version.
func TestSplitAggregatorVersionSkew(t *testing.T) {
	const u = 1 << 4
	table := make([]field.Elem, u)
	proto, err := NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewSplitAggregator(f61, u, 2, sumcheck.Power{K: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]Msg, 2)
	for s := 0; s < 2; s++ {
		lo, hi := uint64(s)*u/2, uint64(s+1)*u/2
		o, err := proto.NewPartialProverFromTable(table[lo:hi], lo, hi, uint64(3+s))
		if err != nil {
			t.Fatal(err)
		}
		m, err := o.Open()
		if err != nil {
			t.Fatal(err)
		}
		parts[s] = m
	}
	if _, err := agg.Open(parts); !errors.Is(err, ErrSplitVersion) {
		t.Fatalf("version skew error = %v, want ErrSplitVersion", err)
	}
}

// TestSplitAggregatorValidation exercises slice-count rules.
func TestSplitAggregatorValidation(t *testing.T) {
	if _, err := NewSplitAggregator(f61, 16, 3, sumcheck.Power{K: 2}, 0); err == nil {
		t.Fatal("3 slices of 16 accepted")
	}
	if _, err := NewSplitAggregator(f61, 16, 16, sumcheck.Power{K: 2}, 0); err == nil {
		t.Fatal("width-1 slices accepted")
	}
	if _, err := NewSplitAggregator(f61, 16, 0, sumcheck.Power{K: 2}, 0); err == nil {
		t.Fatal("0 slices accepted")
	}
	a, err := NewSplitAggregator(f61, 1000, 4, sumcheck.Power{K: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds() != 10 || a.HeadRounds() != 8 {
		t.Fatalf("rounds=%d head=%d, want 10/8", a.Rounds(), a.HeadRounds())
	}
}

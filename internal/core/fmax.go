package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/hashtree"
	"repro/internal/stream"
)

// Fmax is the §6.2 protocol for the maximum frequency. It composes two
// verified sub-protocols:
//
//  1. the prover claims a lower bound lb by exhibiting a witness index w,
//     verified with the INDEX (SUB-VECTOR) protocol: a_w = lb;
//  2. a frequency-based protocol with h(i) = 1 for i > lb (0 otherwise)
//     verifies Σ_i h(a_i) = 0 — no item exceeds lb.
//
// Together they prove Fmax = lb exactly. Requires a non-empty insert-only
// stream (Fmax ≥ 1).
type Fmax struct {
	F      field.Field
	SV     *SubVector
	FB     *FrequencyBased
	Params hashtree.Params
}

// NewFmax returns the protocol for universes of size ≥ u. phi = 0 selects
// the default heavy-hitter fraction u^{-1/2} for the second phase.
func NewFmax(f field.Field, u uint64, phi float64) (*Fmax, error) {
	sv, err := NewSubVector(f, u)
	if err != nil {
		return nil, err
	}
	// The statistic depends on lb, claimed at Open time; a placeholder is
	// installed until then.
	fb, err := NewFrequencyBased(f, u, phi, func(int64) field.Elem { return 0 })
	if err != nil {
		return nil, err
	}
	return &Fmax{F: f, SV: sv, FB: fb, Params: sv.Params}, nil
}

// hAbove returns the statistic h(i) = [i > lb].
func hAbove(lb int64) func(int64) field.Elem {
	return func(c int64) field.Elem {
		if c > lb {
			return 1
		}
		return 0
	}
}

// FmaxVerifier verifies the claimed maximum frequency.
type FmaxVerifier struct {
	proto *Fmax
	sv    *SubVectorVerifier
	fb    *FrequencyBasedVerifier

	witness uint64
	lb      int64
	inFB    bool
	fbOpen  bool
	done    bool
}

// NewVerifier samples randomness for both sub-protocols.
func (p *Fmax) NewVerifier(rng field.RNG) *FmaxVerifier {
	return &FmaxVerifier{proto: p, sv: p.SV.NewVerifier(rng), fb: p.FB.NewVerifier(rng)}
}

// Observe folds one stream update into both sub-verifiers' summaries.
func (v *FmaxVerifier) Observe(up stream.Update) error {
	if err := v.sv.Observe(up); err != nil {
		return err
	}
	return v.fb.Observe(up)
}

// Begin consumes the opening: Ints[0] = witness index w, then the
// embedded INDEX sub-vector opening over [w, w].
func (v *FmaxVerifier) Begin(opening Msg) (Msg, bool, error) {
	if len(opening.Ints) < 1 {
		return Msg{}, false, reject("fmax opening missing witness")
	}
	v.witness = opening.Ints[0]
	if v.witness >= v.proto.Params.U {
		return Msg{}, false, reject("witness %d outside universe", v.witness)
	}
	rest := Msg{Ints: opening.Ints[1:], Elems: opening.Elems}
	// The witness position must be the one claimed entry.
	if len(rest.Ints) != 1 || rest.Ints[0] != v.witness {
		return Msg{}, false, reject("fmax witness sub-vector must contain exactly the witness")
	}
	if err := v.sv.SetQuery(v.witness, v.witness); err != nil {
		return Msg{}, false, err
	}
	ch, done, err := v.sv.Begin(rest)
	if err != nil {
		return Msg{}, false, err
	}
	if done {
		return v.toFB()
	}
	return ch, false, nil
}

// Step advances the active sub-protocol.
func (v *FmaxVerifier) Step(response Msg) (Msg, bool, error) {
	if v.done {
		return Msg{}, false, fmt.Errorf("core: fmax verifier already finished")
	}
	if !v.inFB {
		ch, done, err := v.sv.Step(response)
		if err != nil {
			return Msg{}, false, err
		}
		if done {
			return v.toFB()
		}
		return ch, false, nil
	}
	if !v.fbOpen {
		v.fbOpen = true
		ch, done, err := v.fb.Begin(response)
		return v.finishFB(ch, done, err)
	}
	ch, done, err := v.fb.Step(response)
	return v.finishFB(ch, done, err)
}

// toFB extracts the verified lower bound and switches to the
// frequency-based phase: the empty challenge asks the prover for the
// heavy-hitter opening.
func (v *FmaxVerifier) toFB() (Msg, bool, error) {
	entries, err := v.sv.Result()
	if err != nil {
		return Msg{}, false, err
	}
	if len(entries) != 1 || entries[0].Value < 1 {
		return Msg{}, false, reject("fmax witness has no positive frequency")
	}
	v.lb = entries[0].Value
	v.fb.SetH(hAbove(v.lb))
	v.inFB = true
	return Msg{}, false, nil
}

func (v *FmaxVerifier) finishFB(ch Msg, done bool, err error) (Msg, bool, error) {
	if err != nil {
		return Msg{}, false, err
	}
	if !done {
		return ch, false, nil
	}
	count, err := v.fb.Result()
	if err != nil {
		return Msg{}, false, err
	}
	if count != 0 {
		return Msg{}, false, reject("%d items exceed the claimed maximum %d", count, v.lb)
	}
	v.done = true
	return Msg{}, true, nil
}

// Result returns the verified maximum frequency.
func (v *FmaxVerifier) Result() (int64, error) {
	if !v.done {
		return 0, fmt.Errorf("core: fmax result unavailable before acceptance")
	}
	return v.lb, nil
}

// FmaxProver answers maximum-frequency queries.
type FmaxProver struct {
	proto *Fmax
	sv    *SubVectorProver
	fb    *FrequencyBasedProver

	svSteps int // sub-vector challenges still expected
	fbOpen  bool
}

// NewProver returns a prover ready to observe the stream.
func (p *Fmax) NewProver() *FmaxProver {
	return &FmaxProver{proto: p, sv: p.SV.NewProver(), fb: p.FB.NewProver()}
}

// NewProverFromCounts returns a prover over a shared dense count table
// with the given stream total Σδ (dataset-engine state); both composed
// sub-provers borrow the same table and no stream is replayed.
func (p *Fmax) NewProverFromCounts(counts []int64, total int64) (*FmaxProver, error) {
	sv, err := p.SV.NewProverFromCounts(counts)
	if err != nil {
		return nil, err
	}
	fb, err := p.FB.NewProverFromCounts(counts, total)
	if err != nil {
		return nil, err
	}
	return &FmaxProver{proto: p, sv: sv, fb: fb}, nil
}

// Observe records one stream update for both sub-provers.
func (pr *FmaxProver) Observe(up stream.Update) error {
	if err := pr.sv.Observe(up); err != nil {
		return err
	}
	return pr.fb.Observe(up)
}

// Open finds the maximum frequency and its witness, then opens the INDEX
// sub-conversation.
func (pr *FmaxProver) Open() (Msg, error) {
	// Ascending scan: the witness is the smallest index achieving the
	// maximum frequency, as before.
	var witness uint64
	var lb int64
	for i, c := range pr.sv.counts {
		if c > lb {
			witness, lb = uint64(i), c
		}
	}
	if lb < 1 {
		return Msg{}, fmt.Errorf("core: fmax requires a non-empty stream with positive frequencies")
	}
	pr.fb.SetH(hAbove(lb))
	if err := pr.sv.SetQuery(witness, witness); err != nil {
		return Msg{}, err
	}
	inner, err := pr.sv.Open()
	if err != nil {
		return Msg{}, err
	}
	pr.svSteps = pr.proto.Params.D - 1
	return Msg{Ints: append([]uint64{witness}, inner.Ints...), Elems: inner.Elems}, nil
}

// Step routes challenges: first the sub-vector rounds, then (on the empty
// transition) the frequency-based phase.
func (pr *FmaxProver) Step(challenge Msg) (Msg, error) {
	if pr.svSteps > 0 {
		pr.svSteps--
		return pr.sv.Step(challenge)
	}
	if !pr.fbOpen {
		if challenge.Words() != 0 {
			return Msg{}, fmt.Errorf("core: expected empty transition challenge, got %d words", challenge.Words())
		}
		pr.fbOpen = true
		return pr.fb.Open()
	}
	return pr.fb.Step(challenge)
}

// SetWorkers sets the prover's parallel fan-out of both composed
// sub-protocols; see Fk.Workers. Call before NewProver.
func (p *Fmax) SetWorkers(n int) {
	p.SV.Workers = n
	p.FB.Workers = n
}

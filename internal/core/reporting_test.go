package core

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// runSubVector drives one honest SUB-VECTOR conversation and returns the
// verified entries and stats.
func runSubVector(t *testing.T, u uint64, ups []stream.Update, qL, qR uint64) ([]Entry, Stats, error) {
	t.Helper()
	proto, err := NewSubVector(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(200 + qL + qR)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(qL, qR); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(qL, qR); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(p, v)
	if err != nil {
		return nil, stats, err
	}
	entries, err := v.Result()
	return entries, stats, err
}

func refEntries(t *testing.T, ups []stream.Update, u uint64, qL, qR uint64) []Entry {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	var out []Entry
	for i := qL; i <= qR; i++ {
		if a[i] != 0 {
			out = append(out, Entry{Index: i, Value: a[i]})
		}
	}
	return out
}

func TestSubVectorEndToEnd(t *testing.T) {
	const u = 1 << 10
	rng := field.NewSplitMix64(201)
	ups := stream.UnitIncrements(u, 3000, rng)
	ups = append(ups, stream.Update{Index: 17, Delta: -2})
	for _, q := range []struct{ lo, hi uint64 }{
		{0, u - 1}, {0, 0}, {u - 1, u - 1}, {1, 2}, {100, 400}, {511, 512}, {3, 3},
	} {
		entries, _, err := runSubVector(t, u, ups, q.lo, q.hi)
		if err != nil {
			t.Fatalf("range [%d,%d] rejected: %v", q.lo, q.hi, err)
		}
		want := refEntries(t, ups, u, q.lo, q.hi)
		if len(entries) != len(want) {
			t.Fatalf("range [%d,%d]: %d entries, want %d", q.lo, q.hi, len(entries), len(want))
		}
		for i := range want {
			if entries[i] != want[i] {
				t.Fatalf("range [%d,%d] entry %d: %+v, want %+v", q.lo, q.hi, i, entries[i], want[i])
			}
		}
	}
}

func TestSubVectorEmptyRangeAndEmptyStream(t *testing.T) {
	const u = 256
	// Stream entirely outside the queried range.
	ups := []stream.Update{{Index: 200, Delta: 5}, {Index: 201, Delta: 1}}
	entries, _, err := runSubVector(t, u, ups, 10, 50)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("expected empty answer, got %+v", entries)
	}
	// Fully empty stream.
	entries, _, err = runSubVector(t, u, nil, 0, 255)
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty stream: %+v, %v", entries, err)
	}
}

func TestSubVectorTinyUniverse(t *testing.T) {
	// u = 2 means d = 1: the conversation finishes at Begin.
	ups := []stream.Update{{Index: 0, Delta: 7}, {Index: 1, Delta: 9}}
	entries, stats, err := runSubVector(t, 2, ups, 0, 1)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if len(entries) != 2 || entries[0].Value != 7 || entries[1].Value != 9 {
		t.Fatalf("entries = %+v", entries)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", stats.Rounds)
	}
}

// TestSubVectorCommunication: Theorem 5's (log u, log u + k) bound. The
// conversation beyond the k reported values is O(1) words per level.
func TestSubVectorCommunication(t *testing.T) {
	const u = 1 << 14
	rng := field.NewSplitMix64(202)
	ups := stream.UniformDeltas(u, 100, rng)
	qL, qR := uint64(5000), uint64(5999)
	entries, stats, err := runSubVector(t, u, ups, qL, qR)
	if err != nil {
		t.Fatal(err)
	}
	k := len(entries)
	d := 14
	// Answer: 2k words (index+value); overhead: ≤ 2 boundary values plus
	// ≤ 3 words per round (index+hash each side) plus d-1 challenges.
	maxOverhead := 2 + 5*d
	if got := stats.CommWords() - 2*k; got > maxOverhead {
		t.Errorf("non-answer communication %d words exceeds O(log u) bound %d", got, maxOverhead)
	}
}

// TestSubVectorTamperMatrix: modifying the claimed answer (values or
// indices) or any sibling hash must be caught.
func TestSubVectorTamperMatrix(t *testing.T) {
	const u = 512
	rng := field.NewSplitMix64(203)
	// Sparse stream with known gaps so every tamper mode can fire.
	ups := []stream.Update{
		{Index: 100, Delta: 7}, {Index: 105, Delta: 3}, {Index: 110, Delta: 1},
		{Index: 120, Delta: 9}, {Index: 140, Delta: 2}, {Index: 300, Delta: 4},
	}
	qL, qR := uint64(100), uint64(140)

	mk := func() (ProverSession, VerifierSession) {
		proto, err := NewSubVector(f61, u)
		if err != nil {
			t.Fatal(err)
		}
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(qL, qR); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(qL, qR); err != nil {
			t.Fatal(err)
		}
		return p, v
	}

	tampers := map[string]Tamperer{
		"flip answer value": func(r int, m Msg) Msg {
			if r == 0 && len(m.Elems) > 0 {
				m.Elems[0] = f61.Add(m.Elems[0], 1)
			}
			return m
		},
		"drop an entry": func(r int, m Msg) Msg {
			if r == 0 && len(m.Ints) > 0 {
				m.Ints = m.Ints[1:]
				m.Elems = m.Elems[1:]
			}
			return m
		},
		"shift an index": func(r int, m Msg) Msg {
			if r == 0 && len(m.Ints) > 1 && m.Ints[1] > m.Ints[0]+1 {
				m.Ints[0]++
			}
			return m
		},
		"flip round-2 sibling hash": func(r int, m Msg) Msg {
			if r == 2 && len(m.Elems) > 0 {
				m.Elems[0] = f61.Add(m.Elems[0], 1)
			}
			return m
		},
		"flip round-5 sibling hash": func(r int, m Msg) Msg {
			if r == 5 && len(m.Elems) > 0 {
				m.Elems[0] = f61.Add(m.Elems[0], 1)
			}
			return m
		},
	}
	for name, tamper := range tampers {
		p, v := mk()
		if _, err := Run(&TamperedProver{P: p, T: tamper}, v); !errors.Is(err, ErrRejected) {
			t.Errorf("%s: not rejected (%v)", name, err)
		}
	}
}

func TestSubVectorWrongStreamProver(t *testing.T) {
	const u = 256
	proto, err := NewSubVector(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(204)
	ups := stream.UniformDeltas(u, 50, rng)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups[:len(ups)-1]) // prover misses the last update
	if err := v.SetQuery(0, 255); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(0, 255); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("not rejected: %v", err)
	}
}

func TestIndexEndToEnd(t *testing.T) {
	const u = 1 << 8
	proto, err := NewIndex(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(205)
	ups := stream.UniformDeltas(u, 100, rng)
	a, _ := stream.Apply(ups, u)
	for _, q := range []uint64{0, 1, 100, 255} {
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(q); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(q); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v); err != nil {
			t.Fatalf("INDEX(%d) rejected: %v", q, err)
		}
		got, err := v.Value()
		if err != nil {
			t.Fatal(err)
		}
		if got != a[q] {
			t.Fatalf("INDEX(%d) = %d, want %d", q, got, a[q])
		}
	}
}

func TestDictionaryEndToEnd(t *testing.T) {
	const u = 1 << 10
	proto, err := NewDictionary(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(206)
	pairs, err := stream.DistinctKV(u, 100, u-1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Include a pair with value 0 to exercise the "not found" distinction.
	pairs[0].Value = 0
	kv := map[uint64]uint64{}
	var ups []stream.Update
	for _, pr := range pairs {
		up, err := proto.PutUpdate(pr.Key, pr.Value)
		if err != nil {
			t.Fatal(err)
		}
		ups = append(ups, up)
		kv[pr.Key] = pr.Value
	}
	queries := []uint64{pairs[0].Key, pairs[1].Key, pairs[99].Key}
	// Add a key guaranteed absent.
	for q := uint64(0); q < u; q++ {
		if _, ok := kv[q]; !ok {
			queries = append(queries, q)
			break
		}
	}
	for _, q := range queries {
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(q); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(q); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v); err != nil {
			t.Fatalf("DICTIONARY(%d) rejected: %v", q, err)
		}
		got, found, err := v.Value()
		if err != nil {
			t.Fatal(err)
		}
		want, wantFound := kv[q]
		if found != wantFound || got != want {
			t.Fatalf("DICTIONARY(%d) = (%d,%v), want (%d,%v)", q, got, found, want, wantFound)
		}
	}
}

func TestDictionaryValidation(t *testing.T) {
	proto, err := NewDictionary(f61, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.PutUpdate(64, 1); err == nil {
		t.Error("out-of-universe key accepted")
	}
	if _, err := proto.PutUpdate(1, 64); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := NewDictionary(f61, field.Mersenne61); err == nil {
		t.Error("dictionary universe ≥ p/2 accepted")
	}
}

func TestPredecessorEndToEnd(t *testing.T) {
	const u = 1 << 9
	proto, err := NewPredecessor(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(207)
	present := []uint64{0, 17, 100, 101, 300, 511}
	var ups []stream.Update
	for _, i := range present {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
	}
	cases := []struct {
		q     uint64
		want  uint64
		found bool
	}{
		{0, 0, true}, {5, 0, true}, {17, 17, true}, {18, 17, true},
		{99, 17, true}, {100, 100, true}, {200, 101, true}, {511, 511, true},
	}
	for _, c := range cases {
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(c.q); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(c.q); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v); err != nil {
			t.Fatalf("PRED(%d) rejected: %v", c.q, err)
		}
		got, found, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want || found != c.found {
			t.Fatalf("PRED(%d) = (%d,%v), want (%d,%v)", c.q, got, found, c.want, c.found)
		}
	}
}

func TestPredecessorNone(t *testing.T) {
	const u = 256
	proto, err := NewPredecessor(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(208)
	ups := []stream.Update{{Index: 200, Delta: 1}}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(100); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(100); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, v); err != nil {
		t.Fatalf("rejected: %v", err)
	}
	_, found, err := v.Result()
	if err != nil || found {
		t.Fatalf("PRED none = found=%v, %v; want not found", found, err)
	}
}

// TestPredecessorLyingProver: claiming a stale predecessor (skipping a
// present element) must be rejected — there is a nonzero entry between
// the claim and the query.
func TestPredecessorLyingProver(t *testing.T) {
	const u = 256
	proto, err := NewPredecessor(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(209)
	ups := []stream.Update{{Index: 10, Delta: 1}, {Index: 50, Delta: 1}}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(60); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(60); err != nil {
		t.Fatal(err)
	}
	// The honest answer is 50; the tamperer rewrites the claim to 10 and
	// filters the reported entries accordingly.
	tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
		if r == 0 {
			// Claim predecessor 10: subvector [10,60] must report only 10,
			// so drop the entry at 50.
			m.Ints = []uint64{10, 10}
			m.Elems = m.Elems[:1]
		}
		return m
	}}
	if _, err := Run(tp, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("lying predecessor not rejected: %v", err)
	}
}

func TestSuccessorEndToEnd(t *testing.T) {
	const u = 1 << 9
	proto, err := NewSuccessor(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(210)
	present := []uint64{3, 17, 100, 500}
	var ups []stream.Update
	for _, i := range present {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
	}
	cases := []struct {
		q     uint64
		want  uint64
		found bool
	}{
		{0, 3, true}, {3, 3, true}, {4, 17, true}, {101, 500, true}, {500, 500, true}, {501, 0, false},
	}
	for _, c := range cases {
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(c.q); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(c.q); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v); err != nil {
			t.Fatalf("SUCC(%d) rejected: %v", c.q, err)
		}
		got, found, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want || found != c.found {
			t.Fatalf("SUCC(%d) = (%d,%v), want (%d,%v)", c.q, got, found, c.want, c.found)
		}
	}
}

func TestKLargestEndToEnd(t *testing.T) {
	const u = 1 << 9
	proto, err := NewKLargest(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(211)
	present := []uint64{5, 100, 200, 300, 400}
	var ups []stream.Update
	for _, i := range present {
		ups = append(ups, stream.Update{Index: i, Delta: 1})
		ups = append(ups, stream.Update{Index: i, Delta: 2}) // multiplicity > 1
	}
	for k := 1; k <= 5; k++ {
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(k); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(k); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v); err != nil {
			t.Fatalf("KLARGEST(%d) rejected: %v", k, err)
		}
		got, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		if want := present[len(present)-k]; got != want {
			t.Fatalf("KLARGEST(%d) = %d, want %d", k, got, want)
		}
	}
	// k exceeding the number of distinct elements: honest prover errors.
	p := proto.NewProver()
	observeAll(t, p, ups)
	if err := p.SetQuery(6); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(); err == nil {
		t.Error("k > distinct accepted by prover")
	}
}

// TestKLargestLyingProver: claiming a too-large location requires omitting
// a present element and is caught by the hash check.
func TestKLargestLyingProver(t *testing.T) {
	const u = 256
	proto, err := NewKLargest(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(212)
	ups := []stream.Update{{Index: 10, Delta: 1}, {Index: 50, Delta: 1}, {Index: 90, Delta: 1}}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	// Honest 2nd largest is 50. Tamper the claim to 90 (pretending 90 is
	// the 2nd largest by inventing an entry above it is impossible, so the
	// cheater reports k=2 entries starting at 90 — duplicating 90's pair).
	if err := v.SetQuery(2); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(2); err != nil {
		t.Fatal(err)
	}
	tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
		if r == 0 {
			m.Ints = []uint64{90, 90, 91}
			m.Elems = []field.Elem{1, 1}
		}
		return m
	}}
	if _, err := Run(tp, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("lying k-largest not rejected: %v", err)
	}
}

package core

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

type observer interface {
	Observe(stream.Update) error
}

func observeAll(t *testing.T, obs observer, ups []stream.Update) {
	t.Helper()
	for _, u := range ups {
		if err := obs.Observe(u); err != nil {
			t.Fatal(err)
		}
	}
}

func refFk(t *testing.T, ups []stream.Update, u uint64, k int) field.Elem {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	var total field.Elem
	for _, v := range a {
		total = f61.Add(total, f61.Pow(f61.FromInt64(v), uint64(k)))
	}
	return total
}

func TestSelfJoinSizeEndToEnd(t *testing.T) {
	const u = 1 << 10
	proto, err := NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(101)
	ups := stream.UniformDeltas(u, 1000, rng)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	stats, err := Run(p, v)
	if err != nil {
		t.Fatalf("honest F2 run rejected: %v", err)
	}
	got, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFk(t, ups, u, 2); got != want {
		t.Fatalf("F2 = %d, want %d", got, want)
	}
	// Theorem 4 accounting: d rounds of 3 words plus claim, d-1 challenges.
	d := proto.Params.D
	if stats.Rounds != d {
		t.Errorf("rounds = %d, want %d", stats.Rounds, d)
	}
	if want := 3*d + 1; stats.WordsToVerifier != want {
		t.Errorf("prover→verifier words = %d, want %d", stats.WordsToVerifier, want)
	}
	if want := d - 1; stats.WordsToProver != want {
		t.Errorf("verifier→prover words = %d, want %d", stats.WordsToProver, want)
	}
	if v.SpaceWords() > 4*d+10 {
		t.Errorf("verifier space %d words not O(log u)", v.SpaceWords())
	}
}

func TestFkEndToEndOrders(t *testing.T) {
	const u = 256
	rng := field.NewSplitMix64(102)
	ups := stream.UnitIncrements(u, 3000, rng)
	for k := 1; k <= 5; k++ {
		proto, err := NewFk(f61, u, k)
		if err != nil {
			t.Fatal(err)
		}
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if _, err := Run(p, v); err != nil {
			t.Fatalf("F%d rejected: %v", k, err)
		}
		got, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		if want := refFk(t, ups, u, k); got != want {
			t.Fatalf("F%d = %d, want %d", k, got, want)
		}
	}
}

func TestFkTinyUniverse(t *testing.T) {
	// u rounds up to 2: a single-round protocol (d=1).
	proto, err := NewFk(f61, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(103)
	ups := []stream.Update{{Index: 0, Delta: 3}, {Index: 1, Delta: 4}, {Index: 0, Delta: 2}}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if _, err := Run(p, v); err != nil {
		t.Fatalf("d=1 F2 rejected: %v", err)
	}
	got, _ := v.Result()
	if got != 25+16 {
		t.Fatalf("F2 = %d, want 41", got)
	}
}

func TestInnerProductEndToEnd(t *testing.T) {
	const u = 512
	proto, err := NewInnerProduct(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(104)
	upsA := stream.UniformDeltas(u, 50, rng)
	upsB := stream.UniformDeltas(u, 50, rng)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range upsA {
		if err := v.ObserveA(up); err != nil {
			t.Fatal(err)
		}
		if err := p.ObserveA(up); err != nil {
			t.Fatal(err)
		}
	}
	for _, up := range upsB {
		if err := v.ObserveB(up); err != nil {
			t.Fatal(err)
		}
		if err := p.ObserveB(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(p, v); err != nil {
		t.Fatalf("inner product rejected: %v", err)
	}
	a, _ := stream.Apply(upsA, u)
	b, _ := stream.Apply(upsB, u)
	var want field.Elem
	for i := range a {
		want = f61.Add(want, f61.Mul(f61.FromInt64(a[i]), f61.FromInt64(b[i])))
	}
	got, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("inner product = %d, want %d", got, want)
	}
}

func TestRangeSumEndToEnd(t *testing.T) {
	const u = 1 << 12
	proto, err := NewRangeSum(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(105)
	pairs, err := stream.DistinctKV(u, 500, 10000, rng)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.KVUpdates(pairs)
	for _, q := range []struct{ lo, hi uint64 }{{0, u - 1}, {100, 200}, {0, 0}, {u - 1, u - 1}, {u / 2, u/2 + 999}} {
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if err := v.SetQuery(q.lo, q.hi); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(q.lo, q.hi); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v); err != nil {
			t.Fatalf("range [%d,%d] rejected: %v", q.lo, q.hi, err)
		}
		var want int64
		for _, pr := range pairs {
			if pr.Key >= q.lo && pr.Key <= q.hi {
				want += int64(pr.Value)
			}
		}
		got, err := v.SignedResult()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("range [%d,%d] sum = %d, want %d", q.lo, q.hi, got, want)
		}
	}
}

func TestRangeSumNegativeValues(t *testing.T) {
	const u = 64
	proto, err := NewRangeSum(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(106)
	ups := []stream.Update{{Index: 3, Delta: -50}, {Index: 9, Delta: 20}, {Index: 40, Delta: 7}}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	observeAll(t, p, ups)
	if err := v.SetQuery(0, 20); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuery(0, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, v); err != nil {
		t.Fatalf("rejected: %v", err)
	}
	got, err := v.SignedResult()
	if err != nil || got != -30 {
		t.Fatalf("signed sum = %d, %v; want -30", got, err)
	}
}

func TestRangeSumQueryValidation(t *testing.T) {
	proto, err := NewRangeSum(f61, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(107)
	v := proto.NewVerifier(rng)
	if err := v.SetQuery(5, 4); err == nil {
		t.Error("inverted range accepted")
	}
	if err := v.SetQuery(0, 64); err == nil {
		t.Error("out-of-universe range accepted")
	}
	if _, _, err := v.Begin(Msg{}); err == nil {
		t.Error("Begin without query accepted")
	}
	p := proto.NewProver()
	if _, err := p.Open(); err == nil {
		t.Error("prover Open without query accepted")
	}
}

// TestAggregateTamperMatrix drives the §5 robustness experiment across the
// aggregation protocols: every single-word modification of any prover
// message must be rejected.
func TestAggregateTamperMatrix(t *testing.T) {
	const u = 128
	rng := field.NewSplitMix64(108)
	ups := stream.UniformDeltas(u, 100, rng)

	newRun := func() (ProverSession, VerifierSession) {
		proto, err := NewSelfJoinSize(f61, u)
		if err != nil {
			t.Fatal(err)
		}
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		return p, v
	}

	// Tamper each round (0 = opening) at each message position.
	for round := 0; round <= 7; round++ {
		for pos := 0; pos < 4; pos++ {
			p, v := newRun()
			hit := false
			tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
				if r == round && pos < len(m.Elems) {
					m.Elems[pos] = f61.Add(m.Elems[pos], 1)
					hit = true
				}
				return m
			}}
			_, err := Run(tp, v)
			if hit && !errors.Is(err, ErrRejected) {
				t.Fatalf("tamper round %d pos %d accepted: %v", round, pos, err)
			}
			if !hit && err != nil {
				t.Fatalf("untouched run rejected: %v", err)
			}
		}
	}
}

// TestAggregateWrongStreamProver: the prover "misses out some data" (the
// paper's core threat) and is caught.
func TestAggregateWrongStreamProver(t *testing.T) {
	const u = 256
	proto, err := NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(109)
	ups := stream.UniformDeltas(u, 100, rng)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	observeAll(t, v, ups)
	// Prover never sees the last 3 updates.
	for _, up := range ups[:len(ups)-3] {
		if err := p.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(p, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("prover with missing data not rejected: %v", err)
	}
}

func TestVerifierSessionMisuse(t *testing.T) {
	proto, err := NewSelfJoinSize(f61, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(110)
	v := proto.NewVerifier(rng)
	if _, err := v.Result(); err == nil {
		t.Error("result before conversation accepted")
	}
	if _, _, err := v.Step(Msg{}); err == nil {
		t.Error("step before begin accepted")
	}
	if _, _, err := v.Begin(Msg{Elems: make([]field.Elem, 2)}); err == nil {
		t.Error("malformed opening accepted")
	}
	p := proto.NewProver()
	if _, err := p.Step(Msg{Elems: []field.Elem{1}}); err == nil {
		t.Error("prover step before open accepted")
	}
	if err := p.Observe(stream.Update{Index: 99, Delta: 1}); err == nil {
		t.Error("out-of-universe update accepted")
	}
}

func TestMsgWordsAndClone(t *testing.T) {
	m := Msg{Ints: []uint64{1, 2}, Elems: []field.Elem{3}}
	if m.Words() != 3 {
		t.Errorf("Words = %d, want 3", m.Words())
	}
	c := cloneMsg(m)
	c.Ints[0] = 99
	c.Elems[0] = 99
	if m.Ints[0] != 1 || m.Elems[0] != 3 {
		t.Error("cloneMsg did not deep-copy")
	}
	var s Stats
	s.WordsToVerifier, s.WordsToProver = 5, 2
	if s.CommWords() != 7 || s.CommBytes() != 56 {
		t.Errorf("stats accounting wrong: %d words %d bytes", s.CommWords(), s.CommBytes())
	}
}

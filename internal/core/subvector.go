package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/hashtree"
	"repro/internal/stream"
)

// SubVector is the reporting-query protocol of §4: after the stream, the
// verifier asks for the (nonzero entries of the) sub-vector
// (a_qL, …, a_qR). The prover answers with the k nonzero entries plus the
// boundary values needed to complete sibling pairs; over log u − 1 further
// rounds the verifier releases the per-level hash randomness r_j, receives
// the two boundary sibling hashes per level, reconstructs the root t′ of
// the algebraic hash tree, and accepts iff t′ equals the root t it
// maintained over the stream (Theorem 5: a (log u, log u + k) protocol).
type SubVector struct {
	F      field.Field
	Params hashtree.Params

	// Workers is the prover's parallel fan-out: each hash-tree level built
	// during the conversation is hashed by that many goroutines (0 serial,
	// n < 0 runtime.NumCPU()). Hashes are bit-identical for every value.
	Workers int
}

// NewSubVector returns the protocol for universes of size ≥ u.
func NewSubVector(f field.Field, u uint64) (*SubVector, error) {
	params, err := hashtree.ParamsForUniverse(u)
	if err != nil {
		return nil, err
	}
	if !f.Valid() {
		return nil, fmt.Errorf("core: invalid field")
	}
	return &SubVector{F: f, Params: params}, nil
}

// Entry is one reported sub-vector entry. Value is the aggregated count
// lifted to the centered signed representative.
type Entry struct {
	Index uint64
	Value int64
}

// frontierNode is a known (nonzero-hash) node at the verifier's current
// reconstruction level.
type frontierNode struct {
	idx  uint64
	hash field.Elem
}

// SubVectorVerifier maintains the streamed root in O(log u) words and
// reconstructs the root from the claimed answer. Its working state beyond
// the answer itself is O(k′ + log u) where k′ is the number of nonzero
// hashes still unmerged — the paper's accounting charges O(log u) since
// the answer is output, not retained state.
type SubVectorVerifier struct {
	proto *SubVector
	h     *hashtree.Hasher
	root  *hashtree.RootEvaluator

	qL, qR   uint64
	hasQuery bool

	frontier []frontierNode
	level    int
	lo, hi   uint64 // ancestor range [qL>>level, qR>>level]
	entries  []Entry
	done     bool
}

// NewVerifier samples the per-level hash randomness (before the stream)
// and returns a verifier ready to observe updates.
func (p *SubVector) NewVerifier(rng field.RNG) *SubVectorVerifier {
	h := hashtree.NewHasher(p.F, p.Params, hashtree.Affine, rng)
	return &SubVectorVerifier{proto: p, h: h, root: hashtree.NewRootEvaluator(h)}
}

// Observe folds one stream update into the running root hash.
func (v *SubVectorVerifier) Observe(up stream.Update) error {
	return v.root.Update(up.Index, up.Delta)
}

// SetQuery fixes the queried range [qL, qR]; it must be called after the
// stream and before Begin.
func (v *SubVectorVerifier) SetQuery(qL, qR uint64) error {
	if qL > qR || qR >= v.proto.Params.U {
		return fmt.Errorf("core: bad range [%d,%d] for universe %d", qL, qR, v.proto.Params.U)
	}
	v.qL, v.qR, v.hasQuery = qL, qR, true
	return nil
}

// boundaryNeeds reports which sibling indices at the given level the
// verifier requires to complete its pairs: the left sibling when the left
// ancestor is odd, the right sibling when the right ancestor is even.
func boundaryNeeds(qL, qR uint64, level int) []uint64 {
	lo, hi := qL>>level, qR>>level
	var need []uint64
	if lo&1 == 1 {
		need = append(need, lo-1)
	}
	if hi&1 == 0 {
		need = append(need, hi+1)
	}
	return need
}

// Begin consumes the opening message. Layout:
//
//	Ints:  indices of the claimed nonzero entries in [qL,qR], strictly
//	       increasing;
//	Elems: the corresponding values, followed by the boundary leaf values
//	       (a_{qL-1} if qL is odd, then a_{qR+1} if qR is even).
func (v *SubVectorVerifier) Begin(opening Msg) (Msg, bool, error) {
	if !v.hasQuery {
		return Msg{}, false, fmt.Errorf("core: sub-vector query not set")
	}
	if v.frontier != nil || v.done {
		return Msg{}, false, fmt.Errorf("core: sub-vector verifier already started")
	}
	f := v.proto.F
	needs := boundaryNeeds(v.qL, v.qR, 0)
	k := len(opening.Ints)
	if len(opening.Elems) != k+len(needs) {
		return Msg{}, false, reject("sub-vector opening has %d values for %d indices and %d boundary slots",
			len(opening.Elems), k, len(needs))
	}
	v.frontier = make([]frontierNode, 0, k+2)
	v.entries = make([]Entry, 0, k)
	prev := uint64(0)
	for i, idx := range opening.Ints {
		if idx < v.qL || idx > v.qR {
			return Msg{}, false, reject("claimed entry %d outside range [%d,%d]", idx, v.qL, v.qR)
		}
		if i > 0 && idx <= prev {
			return Msg{}, false, reject("claimed entries not strictly increasing at %d", idx)
		}
		prev = idx
		val := opening.Elems[i]
		if val == 0 {
			return Msg{}, false, reject("claimed entry %d has zero value", idx)
		}
		if uint64(val) >= f.Modulus() {
			return Msg{}, false, reject("claimed entry %d not a canonical field element", idx)
		}
		v.entries = append(v.entries, Entry{Index: idx, Value: f.Centered(val)})
		v.frontier = append(v.frontier, frontierNode{idx: idx, hash: val})
	}
	// Boundary values slot in before/after the claimed range.
	for i, idx := range needs {
		val := opening.Elems[k+i]
		if uint64(val) >= f.Modulus() {
			return Msg{}, false, reject("boundary value not canonical")
		}
		if val == 0 {
			continue
		}
		if idx < v.qL {
			// Left sibling precedes all claimed entries.
			v.frontier = append([]frontierNode{{idx: idx, hash: val}}, v.frontier...)
		} else {
			v.frontier = append(v.frontier, frontierNode{idx: idx, hash: val})
		}
	}
	v.level, v.lo, v.hi = 0, v.qL, v.qR
	return v.advance()
}

// Step consumes the boundary sibling hashes for the current level.
// Layout: Ints = sibling indices (exactly the ones the verifier needs, in
// ascending order), Elems = their hashes.
func (v *SubVectorVerifier) Step(response Msg) (Msg, bool, error) {
	if v.frontier == nil && !v.done {
		return Msg{}, false, fmt.Errorf("core: sub-vector verifier not started")
	}
	if v.done {
		return Msg{}, false, fmt.Errorf("core: sub-vector conversation already finished")
	}
	needs := boundaryNeeds(v.qL, v.qR, v.level)
	if len(response.Ints) != len(needs) || len(response.Elems) != len(needs) {
		return Msg{}, false, reject("level %d response has %d siblings, want %d", v.level, len(response.Ints), len(needs))
	}
	for i, idx := range needs {
		if response.Ints[i] != idx {
			return Msg{}, false, reject("level %d sibling %d: got index %d, want %d", v.level, i, response.Ints[i], idx)
		}
		hash := response.Elems[i]
		if uint64(hash) >= v.proto.F.Modulus() {
			return Msg{}, false, reject("level %d sibling hash not canonical", v.level)
		}
		if hash == 0 {
			continue
		}
		if idx < v.lo {
			v.frontier = append([]frontierNode{{idx: idx, hash: hash}}, v.frontier...)
		} else {
			v.frontier = append(v.frontier, frontierNode{idx: idx, hash: hash})
		}
	}
	return v.advance()
}

// advance folds the completed frontier up one level and either finishes
// (root comparison) or emits the next challenge r_{level}.
func (v *SubVectorVerifier) advance() (Msg, bool, error) {
	// Fold: combine sibling pairs into parents. The frontier is sorted and
	// pair-complete by construction; absent nodes hash to zero.
	next := v.frontier[:0]
	for i := 0; i < len(v.frontier); {
		parent := v.frontier[i].idx >> 1
		var left, right field.Elem
		for ; i < len(v.frontier) && v.frontier[i].idx>>1 == parent; i++ {
			if v.frontier[i].idx&1 == 0 {
				left = v.frontier[i].hash
			} else {
				right = v.frontier[i].hash
			}
		}
		hash := v.h.Combine(v.level+1, left, right, 0)
		if hash != 0 {
			next = append(next, frontierNode{idx: parent, hash: hash})
		}
	}
	v.frontier = next
	v.level++
	v.lo, v.hi = v.qL>>v.level, v.qR>>v.level

	if v.level == v.proto.Params.D {
		var t field.Elem
		if len(v.frontier) > 0 {
			t = v.frontier[0].hash
		}
		if t != v.root.Root() {
			return Msg{}, false, reject("reconstructed root %d ≠ streamed root %d", t, v.root.Root())
		}
		v.done = true
		return Msg{}, true, nil
	}
	// Reveal r_{level} so the prover can hash the current level, and wait
	// for the boundary siblings.
	return Msg{Elems: []field.Elem{v.h.R[v.level-1]}}, false, nil
}

// Result returns the verified sub-vector entries.
func (v *SubVectorVerifier) Result() ([]Entry, error) {
	if !v.done {
		return nil, fmt.Errorf("core: sub-vector result unavailable before acceptance")
	}
	return v.entries, nil
}

// SpaceWords reports the verifier's persistent working memory in the
// paper's accounting: the d level parameters, the streamed root and n,
// and O(1) boundary-path state per level (the reported answer is output,
// not state).
func (v *SubVectorVerifier) SpaceWords() int {
	return v.root.SpaceWords() + 2*v.proto.Params.D
}

// ---------------------------------------------------------------------

// SubVectorProver maintains the dense frequency table (O(u) words, like
// the aggregation provers) and builds the hash tree one level per round as
// the randomness is revealed. Maintaining aggregated counts instead of the
// raw stream keeps prover memory independent of stream length and lets a
// dataset engine hand the same table to many query sessions.
type SubVectorProver struct {
	proto *SubVector
	// counts is the aggregated frequency vector. It is owned (and mutated
	// by Observe) for streaming provers; provers built from a shared
	// snapshot borrow it read-only and refuse Observe.
	counts   []int64
	shared   bool
	tree     *hashtree.IncrementalTree
	qL, qR   uint64
	hasQuery bool
}

// NewProver returns a prover ready to observe the stream.
func (p *SubVector) NewProver() *SubVectorProver {
	return &SubVectorProver{proto: p, counts: make([]int64, p.Params.U)}
}

// NewProverFromCounts returns a prover whose frequency table is the given
// dense count vector (length Params.U), borrowed read-only — typically a
// dataset-engine snapshot. Construction is O(1): no stream is replayed.
// The conversation transcript is bit-identical to a streaming prover that
// observed any stream aggregating to the same counts.
func (p *SubVector) NewProverFromCounts(counts []int64) (*SubVectorProver, error) {
	if uint64(len(counts)) != p.Params.U {
		return nil, fmt.Errorf("core: count table has %d entries, want %d", len(counts), p.Params.U)
	}
	return &SubVectorProver{proto: p, counts: counts, shared: true}, nil
}

// Observe folds one stream update into the frequency table.
func (pr *SubVectorProver) Observe(up stream.Update) error {
	if pr.shared {
		return fmt.Errorf("core: prover built from a snapshot cannot observe updates")
	}
	if up.Index >= pr.proto.Params.U {
		return fmt.Errorf("core: index %d outside universe [0,%d)", up.Index, pr.proto.Params.U)
	}
	pr.counts[up.Index] += up.Delta
	return nil
}

// SetQuery fixes the queried range.
func (pr *SubVectorProver) SetQuery(qL, qR uint64) error {
	if qL > qR || qR >= pr.proto.Params.U {
		return fmt.Errorf("core: bad range [%d,%d] for universe %d", qL, qR, pr.proto.Params.U)
	}
	pr.qL, pr.qR, pr.hasQuery = qL, qR, true
	return nil
}

// Open aggregates the leaves and emits the claimed sub-vector plus
// boundary leaf values.
func (pr *SubVectorProver) Open() (Msg, error) {
	if !pr.hasQuery {
		return Msg{}, fmt.Errorf("core: sub-vector query not set")
	}
	tree, err := hashtree.NewIncrementalFromCounts(pr.proto.F, pr.proto.Params, hashtree.Affine, pr.counts)
	if err != nil {
		return Msg{}, err
	}
	tree.Workers = pr.proto.Workers
	pr.tree = tree
	var msg Msg
	for _, leaf := range tree.LeavesInRange(pr.qL, pr.qR) {
		msg.Ints = append(msg.Ints, leaf.Index)
		msg.Elems = append(msg.Elems, leaf.Hash)
	}
	for _, idx := range boundaryNeeds(pr.qL, pr.qR, 0) {
		n, err := tree.Node(0, idx)
		if err != nil {
			return Msg{}, err
		}
		msg.Elems = append(msg.Elems, n.Hash)
	}
	return msg, nil
}

// Step consumes the revealed r_j, builds level j, and returns the
// boundary sibling hashes the verifier needs.
func (pr *SubVectorProver) Step(challenge Msg) (Msg, error) {
	if pr.tree == nil {
		return Msg{}, fmt.Errorf("core: sub-vector prover not opened")
	}
	if len(challenge.Elems) != 1 {
		return Msg{}, fmt.Errorf("core: sub-vector challenge has %d elems, want 1", len(challenge.Elems))
	}
	if err := pr.tree.Extend(challenge.Elems[0], 0); err != nil {
		return Msg{}, err
	}
	level := pr.tree.BuiltLevels()
	var msg Msg
	for _, idx := range boundaryNeeds(pr.qL, pr.qR, level) {
		n, err := pr.tree.Node(level, idx)
		if err != nil {
			return Msg{}, err
		}
		msg.Ints = append(msg.Ints, idx)
		msg.Elems = append(msg.Elems, n.Hash)
	}
	return msg, nil
}

package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/stream"
)

// This file implements the §4.2 reductions of the reporting queries to
// SUB-VECTOR, plus the k-largest query of §6.1:
//
//   - RANGE QUERY:  SUB-VECTOR verbatim (each element is a δ=1 update);
//   - INDEX:        RANGE QUERY with qL = qR = q;
//   - DICTIONARY:   values are stored shifted by +1 so that "not found"
//     (entry 0) is distinguishable from a stored value of 0;
//   - PREDECESSOR:  the prover claims the predecessor q′ and the verifier
//     checks the sub-vector (a_q′,…,a_q) has exactly one nonzero entry,
//     at q′ — O(log u) communication since k ≤ 1;
//   - SUCCESSOR:    symmetric;
//   - k-LARGEST:    the prover claims the location j of the k-th largest
//     item and the verifier checks the sub-vector (a_j,…,a_{u-1}) has
//     exactly k nonzero entries, the smallest at j.

// NewRangeQuery returns the RANGE QUERY protocol, which is SUB-VECTOR
// applied to a multiset stream (δ=1 per element); reported values are
// multiplicities.
func NewRangeQuery(f field.Field, u uint64) (*SubVector, error) {
	return NewSubVector(f, u)
}

// ---------------------------------------------------------------------
// INDEX

// Index is the INDEX protocol: a single-position lookup, the canonical
// hard problem for plain streaming (Ω(u) space [18]).
type Index struct{ sv *SubVector }

// NewIndex returns the protocol for universes of size ≥ u.
func NewIndex(f field.Field, u uint64) (*Index, error) {
	sv, err := NewSubVector(f, u)
	if err != nil {
		return nil, err
	}
	return &Index{sv: sv}, nil
}

// IndexVerifier wraps a sub-vector verifier over the degenerate range
// [q, q].
type IndexVerifier struct {
	*SubVectorVerifier
	q uint64
}

// NewVerifier samples randomness and returns a verifier.
func (p *Index) NewVerifier(rng field.RNG) *IndexVerifier {
	return &IndexVerifier{SubVectorVerifier: p.sv.NewVerifier(rng)}
}

// SetQuery fixes the queried position.
func (v *IndexVerifier) SetQuery(q uint64) error {
	v.q = q
	return v.SubVectorVerifier.SetQuery(q, q)
}

// Value returns the verified a_q (0 when the position is empty).
func (v *IndexVerifier) Value() (int64, error) {
	entries, err := v.SubVectorVerifier.Result()
	if err != nil {
		return 0, err
	}
	if len(entries) == 0 {
		return 0, nil
	}
	return entries[0].Value, nil
}

// IndexProver wraps a sub-vector prover over [q, q].
type IndexProver struct{ *SubVectorProver }

// NewProver returns a prover ready to observe the stream.
func (p *Index) NewProver() *IndexProver {
	return &IndexProver{SubVectorProver: p.sv.NewProver()}
}

// SetQuery fixes the queried position.
func (pr *IndexProver) SetQuery(q uint64) error {
	return pr.SubVectorProver.SetQuery(q, q)
}

// ---------------------------------------------------------------------
// DICTIONARY

// Dictionary is the DICTIONARY protocol — the verified key-value store
// ("exactly captures the case of key-value stores such as Dynamo", §1.1).
// Values are stored internally as value+1; a retrieved 0 means "not
// found".
type Dictionary struct {
	sv       *SubVector
	maxValue uint64
}

// NewDictionary returns the protocol for keys drawn from [0, u). Values
// may range over [0, u) as in the paper's definition (both key and value
// drawn from the universe).
func NewDictionary(f field.Field, u uint64) (*Dictionary, error) {
	sv, err := NewSubVector(f, u)
	if err != nil {
		return nil, err
	}
	// The +1 shift must stay within the centered-lift range.
	if u >= f.Modulus()/2 {
		return nil, fmt.Errorf("core: dictionary universe %d too large for field %d", u, f.Modulus())
	}
	return &Dictionary{sv: sv, maxValue: u - 1}, nil
}

// PutUpdate encodes an insertion of (key, value) as a stream update with
// the +1 shift. Both parties must observe insertions through this
// encoding. Keys must be distinct across the stream (the paper's
// DICTIONARY promise).
func (p *Dictionary) PutUpdate(key, value uint64) (stream.Update, error) {
	if key >= p.sv.Params.U {
		return stream.Update{}, fmt.Errorf("core: key %d outside universe", key)
	}
	if value > p.maxValue {
		return stream.Update{}, fmt.Errorf("core: value %d exceeds maximum %d", value, p.maxValue)
	}
	return stream.Update{Index: key, Delta: int64(value) + 1}, nil
}

// DictionaryVerifier wraps a sub-vector verifier over [q, q].
type DictionaryVerifier struct {
	*SubVectorVerifier
}

// NewVerifier samples randomness and returns a verifier.
func (p *Dictionary) NewVerifier(rng field.RNG) *DictionaryVerifier {
	return &DictionaryVerifier{SubVectorVerifier: p.sv.NewVerifier(rng)}
}

// SetQuery fixes the looked-up key.
func (v *DictionaryVerifier) SetQuery(key uint64) error {
	return v.SubVectorVerifier.SetQuery(key, key)
}

// Value returns the verified lookup result: (value, true) if the key is
// present, (0, false) for "not found".
func (v *DictionaryVerifier) Value() (uint64, bool, error) {
	entries, err := v.SubVectorVerifier.Result()
	if err != nil {
		return 0, false, err
	}
	if len(entries) == 0 {
		return 0, false, nil
	}
	stored := entries[0].Value
	if stored < 1 {
		return 0, false, reject("dictionary entry %d malformed (stored %d)", entries[0].Index, stored)
	}
	return uint64(stored) - 1, true, nil
}

// DictionaryProver wraps a sub-vector prover over [q, q].
type DictionaryProver struct{ *SubVectorProver }

// NewProver returns a prover ready to observe insertions.
func (p *Dictionary) NewProver() *DictionaryProver {
	return &DictionaryProver{SubVectorProver: p.sv.NewProver()}
}

// SetQuery fixes the looked-up key.
func (pr *DictionaryProver) SetQuery(key uint64) error {
	return pr.SubVectorProver.SetQuery(key, key)
}

// ---------------------------------------------------------------------
// PREDECESSOR / SUCCESSOR

// NoneSentinel is the index the prover claims when no predecessor or
// successor exists (the paper sidesteps this by assuming 0 is always
// present; we verify the "none" claim instead of assuming).
const NoneSentinel = ^uint64(0)

// Predecessor is the PREDECESSOR protocol: the largest p ≤ q present in
// the stream.
type Predecessor struct{ sv *SubVector }

// NewPredecessor returns the protocol for universes of size ≥ u.
func NewPredecessor(f field.Field, u uint64) (*Predecessor, error) {
	sv, err := NewSubVector(f, u)
	if err != nil {
		return nil, err
	}
	return &Predecessor{sv: sv}, nil
}

// PredecessorVerifier verifies the claimed predecessor via an embedded
// sub-vector conversation.
type PredecessorVerifier struct {
	sv      *SubVectorVerifier
	q       uint64
	claimed uint64
	started bool
}

// NewVerifier samples randomness and returns a verifier.
func (p *Predecessor) NewVerifier(rng field.RNG) *PredecessorVerifier {
	return &PredecessorVerifier{sv: p.sv.NewVerifier(rng)}
}

// Observe folds one stream element (interpreted as an insertion of the
// element's index; callers pass δ=1 updates).
func (v *PredecessorVerifier) Observe(up stream.Update) error { return v.sv.Observe(up) }

// SetQuery fixes the query point q.
func (v *PredecessorVerifier) SetQuery(q uint64) error {
	if q >= v.sv.proto.Params.U {
		return fmt.Errorf("core: query %d outside universe", q)
	}
	v.q = q
	return nil
}

// Begin consumes the opening: Ints[0] is the claimed predecessor (or
// NoneSentinel), followed by the embedded sub-vector opening over
// [claimed, q] (respectively [0, q] for a "none" claim, which must report
// an empty sub-vector).
func (v *PredecessorVerifier) Begin(opening Msg) (Msg, bool, error) {
	if v.started {
		return Msg{}, false, fmt.Errorf("core: predecessor verifier already started")
	}
	v.started = true
	if len(opening.Ints) < 1 {
		return Msg{}, false, reject("predecessor opening missing claim")
	}
	v.claimed = opening.Ints[0]
	rest := Msg{Ints: opening.Ints[1:], Elems: opening.Elems}
	lo := uint64(0)
	if v.claimed != NoneSentinel {
		if v.claimed > v.q {
			return Msg{}, false, reject("claimed predecessor %d exceeds query %d", v.claimed, v.q)
		}
		lo = v.claimed
		if len(rest.Ints) != 1 || rest.Ints[0] != v.claimed {
			return Msg{}, false, reject("predecessor sub-vector must contain exactly the claimed index")
		}
	} else if len(rest.Ints) != 0 {
		return Msg{}, false, reject("none-claim must report an empty sub-vector")
	}
	if err := v.sv.SetQuery(lo, v.q); err != nil {
		return Msg{}, false, err
	}
	return v.sv.Begin(rest)
}

// Step delegates to the embedded sub-vector conversation.
func (v *PredecessorVerifier) Step(response Msg) (Msg, bool, error) { return v.sv.Step(response) }

// Result returns the verified predecessor; found is false when no element
// ≤ q exists.
func (v *PredecessorVerifier) Result() (pred uint64, found bool, err error) {
	if _, err := v.sv.Result(); err != nil {
		return 0, false, err
	}
	if v.claimed == NoneSentinel {
		return 0, false, nil
	}
	return v.claimed, true, nil
}

// PredecessorProver answers predecessor queries.
type PredecessorProver struct {
	sv *SubVectorProver
	q  uint64
}

// NewProver returns a prover ready to observe the stream.
func (p *Predecessor) NewProver() *PredecessorProver {
	return &PredecessorProver{sv: p.sv.NewProver()}
}

// Observe records one stream element.
func (pr *PredecessorProver) Observe(up stream.Update) error { return pr.sv.Observe(up) }

// SetQuery fixes the query point q.
func (pr *PredecessorProver) SetQuery(q uint64) error {
	if q >= pr.sv.proto.Params.U {
		return fmt.Errorf("core: query %d outside universe", q)
	}
	pr.q = q
	return nil
}

// Open computes the true predecessor and opens the embedded sub-vector
// conversation.
func (pr *PredecessorProver) Open() (Msg, error) {
	pred, found := scanExtreme(pr.sv.counts, func(i uint64) bool { return i <= pr.q }, true)
	lo, claim := uint64(0), NoneSentinel
	if found {
		lo, claim = pred, pred
	}
	if err := pr.sv.SetQuery(lo, pr.q); err != nil {
		return Msg{}, err
	}
	inner, err := pr.sv.Open()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Ints: append([]uint64{claim}, inner.Ints...), Elems: inner.Elems}, nil
}

// Step delegates to the embedded sub-vector conversation.
func (pr *PredecessorProver) Step(challenge Msg) (Msg, error) { return pr.sv.Step(challenge) }

// Successor is the symmetric SUCCESSOR protocol: the smallest p ≥ q
// present in the stream.
type Successor struct{ sv *SubVector }

// NewSuccessor returns the protocol for universes of size ≥ u.
func NewSuccessor(f field.Field, u uint64) (*Successor, error) {
	sv, err := NewSubVector(f, u)
	if err != nil {
		return nil, err
	}
	return &Successor{sv: sv}, nil
}

// SuccessorVerifier verifies the claimed successor.
type SuccessorVerifier struct {
	sv      *SubVectorVerifier
	q       uint64
	claimed uint64
	started bool
}

// NewVerifier samples randomness and returns a verifier.
func (p *Successor) NewVerifier(rng field.RNG) *SuccessorVerifier {
	return &SuccessorVerifier{sv: p.sv.NewVerifier(rng)}
}

// Observe folds one stream element.
func (v *SuccessorVerifier) Observe(up stream.Update) error { return v.sv.Observe(up) }

// SetQuery fixes the query point q.
func (v *SuccessorVerifier) SetQuery(q uint64) error {
	if q >= v.sv.proto.Params.U {
		return fmt.Errorf("core: query %d outside universe", q)
	}
	v.q = q
	return nil
}

// Begin consumes the opening: Ints[0] is the claimed successor (or
// NoneSentinel), then the sub-vector opening over [q, claimed]
// (respectively [q, u-1] for "none").
func (v *SuccessorVerifier) Begin(opening Msg) (Msg, bool, error) {
	if v.started {
		return Msg{}, false, fmt.Errorf("core: successor verifier already started")
	}
	v.started = true
	if len(opening.Ints) < 1 {
		return Msg{}, false, reject("successor opening missing claim")
	}
	v.claimed = opening.Ints[0]
	rest := Msg{Ints: opening.Ints[1:], Elems: opening.Elems}
	hi := v.sv.proto.Params.U - 1
	if v.claimed != NoneSentinel {
		if v.claimed < v.q || v.claimed >= v.sv.proto.Params.U {
			return Msg{}, false, reject("claimed successor %d outside [%d,%d]", v.claimed, v.q, hi)
		}
		hi = v.claimed
		if len(rest.Ints) != 1 || rest.Ints[0] != v.claimed {
			return Msg{}, false, reject("successor sub-vector must contain exactly the claimed index")
		}
	} else if len(rest.Ints) != 0 {
		return Msg{}, false, reject("none-claim must report an empty sub-vector")
	}
	if err := v.sv.SetQuery(v.q, hi); err != nil {
		return Msg{}, false, err
	}
	return v.sv.Begin(rest)
}

// Step delegates to the embedded sub-vector conversation.
func (v *SuccessorVerifier) Step(response Msg) (Msg, bool, error) { return v.sv.Step(response) }

// Result returns the verified successor.
func (v *SuccessorVerifier) Result() (succ uint64, found bool, err error) {
	if _, err := v.sv.Result(); err != nil {
		return 0, false, err
	}
	if v.claimed == NoneSentinel {
		return 0, false, nil
	}
	return v.claimed, true, nil
}

// SuccessorProver answers successor queries.
type SuccessorProver struct {
	sv *SubVectorProver
	q  uint64
}

// NewProver returns a prover ready to observe the stream.
func (p *Successor) NewProver() *SuccessorProver {
	return &SuccessorProver{sv: p.sv.NewProver()}
}

// Observe records one stream element.
func (pr *SuccessorProver) Observe(up stream.Update) error { return pr.sv.Observe(up) }

// SetQuery fixes the query point q.
func (pr *SuccessorProver) SetQuery(q uint64) error {
	if q >= pr.sv.proto.Params.U {
		return fmt.Errorf("core: query %d outside universe", q)
	}
	pr.q = q
	return nil
}

// Open computes the true successor and opens the embedded sub-vector
// conversation.
func (pr *SuccessorProver) Open() (Msg, error) {
	succ, found := scanExtreme(pr.sv.counts, func(i uint64) bool { return i >= pr.q }, false)
	hi, claim := pr.sv.proto.Params.U-1, NoneSentinel
	if found {
		hi, claim = succ, succ
	}
	if err := pr.sv.SetQuery(pr.q, hi); err != nil {
		return Msg{}, err
	}
	inner, err := pr.sv.Open()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Ints: append([]uint64{claim}, inner.Ints...), Elems: inner.Elems}, nil
}

// Step delegates to the embedded sub-vector conversation.
func (pr *SuccessorProver) Step(challenge Msg) (Msg, error) { return pr.sv.Step(challenge) }

// scanExtreme returns the largest (wantMax) or smallest nonzero index of
// the dense frequency table satisfying keep.
func scanExtreme(counts []int64, keep func(uint64) bool, wantMax bool) (uint64, bool) {
	var best uint64
	found := false
	for i, c := range counts {
		idx := uint64(i)
		if c == 0 || !keep(idx) {
			continue
		}
		if !found || (wantMax && idx > best) || (!wantMax && idx < best) {
			best, found = idx, true
		}
	}
	return best, found
}

// ---------------------------------------------------------------------
// k-LARGEST

// KLargest is the k-th largest query of §6.1: the largest p present such
// that at least k-1 larger values are also present. Cost (log u, k+log u).
type KLargest struct{ sv *SubVector }

// NewKLargest returns the protocol for universes of size ≥ u.
func NewKLargest(f field.Field, u uint64) (*KLargest, error) {
	sv, err := NewSubVector(f, u)
	if err != nil {
		return nil, err
	}
	return &KLargest{sv: sv}, nil
}

// KLargestVerifier checks a claimed k-th-largest location by verifying
// that the sub-vector (a_loc,…,a_{u-1}) has exactly k nonzero entries
// with the smallest at loc.
type KLargestVerifier struct {
	sv      *SubVectorVerifier
	k       int
	claimed uint64
	started bool
}

// NewVerifier samples randomness and returns a verifier.
func (p *KLargest) NewVerifier(rng field.RNG) *KLargestVerifier {
	return &KLargestVerifier{sv: p.sv.NewVerifier(rng)}
}

// Observe folds one stream element.
func (v *KLargestVerifier) Observe(up stream.Update) error { return v.sv.Observe(up) }

// SetQuery fixes k ≥ 1.
func (v *KLargestVerifier) SetQuery(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k-largest requires k ≥ 1, got %d", k)
	}
	v.k = k
	return nil
}

// Begin consumes the opening: Ints[0] = claimed location, then the
// sub-vector opening over [loc, u-1].
func (v *KLargestVerifier) Begin(opening Msg) (Msg, bool, error) {
	if v.started {
		return Msg{}, false, fmt.Errorf("core: k-largest verifier already started")
	}
	if v.k == 0 {
		return Msg{}, false, fmt.Errorf("core: k-largest query not set")
	}
	v.started = true
	if len(opening.Ints) < 1 {
		return Msg{}, false, reject("k-largest opening missing claim")
	}
	v.claimed = opening.Ints[0]
	if v.claimed >= v.sv.proto.Params.U {
		return Msg{}, false, reject("claimed location %d outside universe", v.claimed)
	}
	rest := Msg{Ints: opening.Ints[1:], Elems: opening.Elems}
	if len(rest.Ints) != v.k {
		return Msg{}, false, reject("k-largest sub-vector has %d entries, want exactly k=%d", len(rest.Ints), v.k)
	}
	if rest.Ints[0] != v.claimed {
		return Msg{}, false, reject("smallest reported entry %d is not the claimed location %d", rest.Ints[0], v.claimed)
	}
	if err := v.sv.SetQuery(v.claimed, v.sv.proto.Params.U-1); err != nil {
		return Msg{}, false, err
	}
	return v.sv.Begin(rest)
}

// Step delegates to the embedded sub-vector conversation.
func (v *KLargestVerifier) Step(response Msg) (Msg, bool, error) { return v.sv.Step(response) }

// Result returns the verified k-th largest element.
func (v *KLargestVerifier) Result() (uint64, error) {
	if _, err := v.sv.Result(); err != nil {
		return 0, err
	}
	return v.claimed, nil
}

// KLargestProver answers k-th largest queries.
type KLargestProver struct {
	sv *SubVectorProver
	k  int
}

// NewProver returns a prover ready to observe the stream.
func (p *KLargest) NewProver() *KLargestProver {
	return &KLargestProver{sv: p.sv.NewProver()}
}

// Observe records one stream element.
func (pr *KLargestProver) Observe(up stream.Update) error { return pr.sv.Observe(up) }

// SetQuery fixes k ≥ 1.
func (pr *KLargestProver) SetQuery(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k-largest requires k ≥ 1, got %d", k)
	}
	pr.k = k
	return nil
}

// Open locates the k-th largest distinct element and opens the sub-vector
// conversation over [loc, u-1]. It reports an error if fewer than k
// distinct elements are present.
func (pr *KLargestProver) Open() (Msg, error) {
	if pr.k == 0 {
		return Msg{}, fmt.Errorf("core: k-largest query not set")
	}
	var loc uint64
	seen := 0
	for i := len(pr.sv.counts) - 1; i >= 0 && seen < pr.k; i-- {
		if pr.sv.counts[i] != 0 {
			seen++
			loc = uint64(i)
		}
	}
	if seen < pr.k {
		return Msg{}, fmt.Errorf("core: only %d distinct elements present, need %d", seen, pr.k)
	}
	if err := pr.sv.SetQuery(loc, pr.sv.proto.Params.U-1); err != nil {
		return Msg{}, err
	}
	inner, err := pr.sv.Open()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Ints: append([]uint64{loc}, inner.Ints...), Elems: inner.Elems}, nil
}

// Step delegates to the embedded sub-vector conversation.
func (pr *KLargestProver) Step(challenge Msg) (Msg, error) { return pr.sv.Step(challenge) }

// ---------------------------------------------------------------------
// Snapshot-backed proving
//
// Each specialization can also construct its prover from a dense count
// table maintained elsewhere (a dataset-engine snapshot) instead of
// observing the stream; see SubVector.NewProverFromCounts.

// NewProverFromCounts returns an INDEX prover over a shared count table.
func (p *Index) NewProverFromCounts(counts []int64) (*IndexProver, error) {
	sv, err := p.sv.NewProverFromCounts(counts)
	if err != nil {
		return nil, err
	}
	return &IndexProver{SubVectorProver: sv}, nil
}

// NewProverFromCounts returns a DICTIONARY prover over a shared count table.
func (p *Dictionary) NewProverFromCounts(counts []int64) (*DictionaryProver, error) {
	sv, err := p.sv.NewProverFromCounts(counts)
	if err != nil {
		return nil, err
	}
	return &DictionaryProver{SubVectorProver: sv}, nil
}

// NewProverFromCounts returns a PREDECESSOR prover over a shared count table.
func (p *Predecessor) NewProverFromCounts(counts []int64) (*PredecessorProver, error) {
	sv, err := p.sv.NewProverFromCounts(counts)
	if err != nil {
		return nil, err
	}
	return &PredecessorProver{sv: sv}, nil
}

// NewProverFromCounts returns a SUCCESSOR prover over a shared count table.
func (p *Successor) NewProverFromCounts(counts []int64) (*SuccessorProver, error) {
	sv, err := p.sv.NewProverFromCounts(counts)
	if err != nil {
		return nil, err
	}
	return &SuccessorProver{sv: sv}, nil
}

// NewProverFromCounts returns a k-LARGEST prover over a shared count table.
func (p *KLargest) NewProverFromCounts(counts []int64) (*KLargestProver, error) {
	sv, err := p.sv.NewProverFromCounts(counts)
	if err != nil {
		return nil, err
	}
	return &KLargestProver{sv: sv}, nil
}

// ---------------------------------------------------------------------
// Parallel proving

// SetWorkers sets the prover's parallel fan-out of the underlying
// SUB-VECTOR protocol; see SubVector.Workers.
func (p *Index) SetWorkers(n int) { p.sv.Workers = n }

// SetWorkers sets the prover's parallel fan-out; see SubVector.Workers.
func (p *Dictionary) SetWorkers(n int) { p.sv.Workers = n }

// SetWorkers sets the prover's parallel fan-out; see SubVector.Workers.
func (p *Predecessor) SetWorkers(n int) { p.sv.Workers = n }

// SetWorkers sets the prover's parallel fan-out; see SubVector.Workers.
func (p *Successor) SetWorkers(n int) { p.sv.Workers = n }

// SetWorkers sets the prover's parallel fan-out; see SubVector.Workers.
func (p *KLargest) SetWorkers(n int) { p.sv.Workers = n }

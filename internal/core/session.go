// Package core implements the paper's protocols — the primary
// contribution of Cormode, Thaler & Yi (VLDB 2011):
//
//   - aggregation queries (§3): SELF-JOIN SIZE (F2), FREQUENCY MOMENTS
//     (Fk), INNER PRODUCT, RANGE-SUM — via sum-check over low-degree
//     extensions;
//   - reporting queries (§4): SUB-VECTOR and its specializations RANGE
//     QUERY, INDEX, DICTIONARY, PREDECESSOR, SUCCESSOR — via the algebraic
//     hash tree;
//   - extensions (§6): HEAVY HITTERS, k-LARGEST, and the frequency-based
//     functions F0, Fmax and inverse-distribution point queries.
//
// Every protocol is a pair of session state machines. Both parties first
// observe the same stream of (index, delta) updates; the verifier does so
// in O(log u) space. After the stream (and after the query parameters are
// fixed), the conversation proceeds in rounds:
//
//	opening := prover.Open()
//	challenge, done := verifier.Begin(opening)
//	for !done {
//	    response := prover.Step(challenge)
//	    challenge, done = verifier.Step(response)
//	}
//
// Run drives this loop locally and accounts for rounds and communication;
// package internal/wire drives the same interfaces over TCP.
package core

import (
	"errors"
	"fmt"

	"repro/internal/field"
)

// ErrRejected is (wrapped and) returned whenever the verifier refuses a
// proof: per Definition 1 the verifier outputs ⊥. Distinguish it from
// transport or usage errors with errors.Is.
var ErrRejected = errors.New("core: proof rejected")

// reject builds an ErrRejected with context.
func reject(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRejected, fmt.Sprintf(format, args...))
}

// Msg is one protocol message. The meaning of the two sections is fixed
// by each protocol; word accounting (the paper's communication measure)
// charges one word per entry of either slice.
type Msg struct {
	Ints  []uint64     // indices, counts, claimed positions
	Elems []field.Elem // field elements: claims, hashes, polynomial evaluations
}

// Words returns the message size in words.
func (m Msg) Words() int { return len(m.Ints) + len(m.Elems) }

// ProverSession is the prover side of one query's conversation.
type ProverSession interface {
	// Open produces the opening message: the claimed answer together with
	// any unprompted first-round payload.
	Open() (Msg, error)
	// Step consumes a verifier challenge and produces the next response.
	Step(challenge Msg) (Msg, error)
}

// VerifierSession is the verifier side of one query's conversation.
type VerifierSession interface {
	// Begin consumes the opening message. It returns the first challenge,
	// or done=true if the conversation needs no further rounds.
	Begin(opening Msg) (challenge Msg, done bool, err error)
	// Step consumes a prover response and returns the next challenge or
	// done=true after the final check passed.
	Step(response Msg) (challenge Msg, done bool, err error)
}

// Stats aggregates the cost accounting of one protocol run, in the units
// used throughout the paper's §5: words (field elements / integers) and
// message rounds.
type Stats struct {
	Rounds          int // prover messages (opening included)
	WordsToVerifier int
	WordsToProver   int
}

// CommWords is the total two-way communication t.
func (s Stats) CommWords() int { return s.WordsToVerifier + s.WordsToProver }

// CommBytes converts words to bytes (8-byte words, as in the experiments).
func (s Stats) CommBytes() int { return 8 * s.CommWords() }

// Run drives a complete local conversation between p and v, returning the
// accounting stats. A nil error means the verifier accepted.
func Run(p ProverSession, v VerifierSession) (Stats, error) {
	var st Stats
	opening, err := p.Open()
	if err != nil {
		return st, err
	}
	st.Rounds++
	st.WordsToVerifier += opening.Words()
	challenge, done, err := v.Begin(opening)
	if err != nil {
		return st, err
	}
	for !done {
		st.WordsToProver += challenge.Words()
		response, err := p.Step(challenge)
		if err != nil {
			return st, err
		}
		st.Rounds++
		st.WordsToVerifier += response.Words()
		challenge, done, err = v.Step(response)
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// Tamperer mutates prover messages in flight; it models the dishonest
// provers of the paper's §5 robustness experiments ("we also tried
// modifying the prover's messages..."). Round 0 is the opening.
type Tamperer func(round int, m Msg) Msg

// TamperedProver wraps a ProverSession, applying T to every outgoing
// message.
type TamperedProver struct {
	P ProverSession
	T Tamperer

	round int
}

// Open applies the tamperer to the opening message.
func (tp *TamperedProver) Open() (Msg, error) {
	m, err := tp.P.Open()
	if err != nil {
		return m, err
	}
	tp.round = 0
	return tp.T(0, cloneMsg(m)), nil
}

// Step applies the tamperer to the round response.
func (tp *TamperedProver) Step(challenge Msg) (Msg, error) {
	m, err := tp.P.Step(challenge)
	if err != nil {
		return m, err
	}
	tp.round++
	return tp.T(tp.round, cloneMsg(m)), nil
}

func cloneMsg(m Msg) Msg {
	return Msg{
		Ints:  append([]uint64(nil), m.Ints...),
		Elems: append([]field.Elem(nil), m.Elems...),
	}
}

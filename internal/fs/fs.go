// Package fs implements the Fiat–Shamir layer: deterministic verifier
// randomness derived from a domain-separated transcript hash, and a
// serializable Proof that replays one recorded conversation to any
// number of offline verifiers.
//
// The protocols in this repository are streaming interactive proofs in
// the sense of Cormode–Thaler–Yi: the verifier samples ALL of its
// randomness up front (the LDE evaluation point, the hash-tree
// coefficients, the GKR layer challenges), condenses the stream into an
// O(log u) fingerprint at that randomness, and then reveals the
// pre-sampled coordinates one per round — no challenge ever depends on
// a prover message. Concretely, every verifier constructor in core/gkr
// takes a field.RNG and draws from it only at construction time.
//
// That structure makes the Fiat–Shamir transform unusually clean: it is
// enough to replace the secret RNG with a public, deterministic one
// seeded by a transcript over the public parameters — field modulus,
// universe size, dataset name, dataset VERSION, and the canonical query
// encoding. Binding the dataset version into the seed means every
// ingest batch rotates the challenge point, so a proof is pinned to one
// immutable snapshot of the data and a cache key of
// (dataset, version, query) can never serve a stale proof.
//
// The soundness caveat is stated honestly in DESIGN.md: because the
// challenge point cannot depend on prover messages (the streaming
// verifier must know it before the stream), a prover who fixes the
// dataset AFTER seeing the derived point could cheat. The transform is
// therefore sound in the model where the data is committed first (the
// engine ingests, bumping the version, before any proof at that version
// exists) and the prover messages are bound after the fact by the
// running transcript digest carried in the proof.
package fs

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/field"
)

// Transcript is a running domain-separated hash. Absorb calls fold
// labeled data into the state; RNG snapshots the current state as the
// seed of a deterministic counter-mode generator; Digest returns the
// current state for use as a binding checksum.
type Transcript struct {
	state [sha256.Size]byte
}

// New returns a transcript whose initial state commits to the domain
// string, separating e.g. proof transcripts from any future use.
func New(domain string) *Transcript {
	t := &Transcript{}
	t.absorb(tagDomain, domain, nil)
	return t
}

// Absorption tags keep differently-shaped inputs from colliding.
const (
	tagDomain byte = 0x01
	tagBytes  byte = 0x02
	tagUint   byte = 0x03
	tagMsg    byte = 0x04
	tagRNG    byte = 0x05
)

// absorb sets state = H(state ‖ tag ‖ len(label) ‖ label ‖ len(data) ‖ data).
// Length prefixes make the encoding injective.
func (t *Transcript) absorb(tag byte, label string, data []byte) {
	h := sha256.New()
	h.Write(t.state[:])
	var hdr [1 + 8]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(label)))
	h.Write(hdr[:])
	h.Write([]byte(label))
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(data)))
	h.Write(hdr[1:])
	h.Write(data)
	h.Sum(t.state[:0])
}

// AbsorbBytes folds a labeled byte string into the transcript.
func (t *Transcript) AbsorbBytes(label string, b []byte) { t.absorb(tagBytes, label, b) }

// AbsorbUint folds a labeled 64-bit integer into the transcript.
func (t *Transcript) AbsorbUint(label string, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.absorb(tagUint, label, b[:])
}

// AbsorbMsg folds a prover message into the transcript under a
// canonical encoding (int count, ints, elem count, elems — all 64-bit
// little-endian), so any bit of any recorded message perturbs the
// digest.
func (t *Transcript) AbsorbMsg(label string, m core.Msg) {
	buf := make([]byte, 0, 16+8*(len(m.Ints)+len(m.Elems)))
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(uint64(len(m.Ints)))
	for _, v := range m.Ints {
		put(v)
	}
	put(uint64(len(m.Elems)))
	for _, e := range m.Elems {
		put(uint64(e))
	}
	t.absorb(tagMsg, label, buf)
}

// Digest returns the current transcript state.
func (t *Transcript) Digest() [sha256.Size]byte { return t.state }

// RNG returns a deterministic field.RNG seeded by the transcript state
// at the moment of the call (later absorbs do not affect it). Blocks
// are H(seed ‖ counter), consumed as four 64-bit words each — a
// counter-mode hash stream.
func (t *Transcript) RNG(label string) field.RNG {
	seed := *t
	seed.absorb(tagRNG, label, nil)
	return &hashRNG{seed: seed.state}
}

type hashRNG struct {
	seed [sha256.Size]byte
	buf  [sha256.Size]byte
	idx  int // next byte offset in buf; sha256.Size means "refill"
	ctr  uint64
}

func (r *hashRNG) Uint64() uint64 {
	if r.idx == 0 || r.idx >= sha256.Size {
		h := sha256.New()
		h.Write(r.seed[:])
		var c [8]byte
		binary.LittleEndian.PutUint64(c[:], r.ctr)
		r.ctr++
		h.Write(c[:])
		h.Sum(r.buf[:0])
		r.idx = 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.idx:])
	r.idx += 8
	return v
}

package fs_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fs"
	"repro/internal/stream"
)

func testBinding(f field.Field, u uint64) fs.Binding {
	return fs.Binding{
		Modulus:  f.Modulus(),
		Universe: u,
		Dataset:  "metrics",
		Version:  3,
		Query:    fs.Query{Kind: 1},
	}
}

// proveF2 builds a small F2 proof over a deterministic stream, returning
// the proof and the update list so callers can build fresh verifiers.
func proveF2(t *testing.T, b fs.Binding, f field.Field, u uint64) (*fs.Proof, []stream.Update) {
	t.Helper()
	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.UnitIncrements(u, 200, field.NewSplitMix64(11))
	p := proto.NewProver()
	v := proto.NewVerifier(b.RNG())
	for _, up := range ups {
		if err := p.Observe(up); err != nil {
			t.Fatal(err)
		}
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	pf, err := b.Prove(p, v)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	return pf, ups
}

func freshF2Verifier(t *testing.T, b fs.Binding, f field.Field, u uint64, ups []stream.Update) core.VerifierSession {
	t.Helper()
	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(b.RNG())
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestTranscriptDeterministic(t *testing.T) {
	mk := func() *fs.Transcript {
		tr := fs.New("test/domain")
		tr.AbsorbUint("a", 7)
		tr.AbsorbBytes("b", []byte("payload"))
		tr.AbsorbMsg("m", core.Msg{Ints: []uint64{1, 2}, Elems: []field.Elem{3}})
		return tr
	}
	t1, t2 := mk(), mk()
	if t1.Digest() != t2.Digest() {
		t.Fatal("same absorbs produced different digests")
	}
	r1, r2 := t1.RNG("x"), t2.RNG("x")
	for i := 0; i < 64; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("RNG streams diverged at draw %d", i)
		}
	}
	// A later absorb must not perturb an RNG already split off.
	r3 := t1.RNG("x")
	t1.AbsorbUint("later", 1)
	r4 := t1.RNG("x")
	first := r3.Uint64()
	if first != t2.RNG("x").Uint64() {
		t.Fatal("RNG depends on state after the split")
	}
	if r4.Uint64() == first {
		t.Fatal("absorb did not rotate a freshly split RNG")
	}
}

func TestTranscriptSeparation(t *testing.T) {
	base := func() *fs.Transcript { return fs.New("test/domain") }
	a := base()
	a.AbsorbBytes("l", []byte("ab"))
	bt := base()
	bt.AbsorbBytes("la", []byte("b"))
	if a.Digest() == bt.Digest() {
		t.Fatal("label/data boundary not injective")
	}
	c := base()
	c.AbsorbUint("l", 0x6162)
	if a.Digest() == c.Digest() {
		t.Fatal("uint and bytes absorbs collide")
	}
}

func TestBindingVersionRotatesChallenges(t *testing.T) {
	f := field.Mersenne()
	b1 := testBinding(f, 1<<8)
	b2 := b1
	b2.Version++
	if b1.RNG().Uint64() == b2.RNG().Uint64() {
		t.Fatal("bumping the version did not rotate the challenge stream")
	}
	b3 := b1
	b3.Query.A = 9
	if b1.RNG().Uint64() == b3.RNG().Uint64() {
		t.Fatal("changing the query did not rotate the challenge stream")
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	f := field.Mersenne()
	u := uint64(1) << 8
	b := testBinding(f, u)
	pf, ups := proveF2(t, b, f, u)

	v := freshF2Verifier(t, b, f, u, ups)
	if err := b.Verify(pf, v); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// A second generation is bit-identical: encode both and compare.
	pf2, _ := proveF2(t, b, f, u)
	if !bytes.Equal(pf.Encode(), pf2.Encode()) {
		t.Fatal("regenerated proof is not bit-identical")
	}
}

func TestVerifyRejectsWrongBinding(t *testing.T) {
	f := field.Mersenne()
	u := uint64(1) << 8
	b := testBinding(f, u)
	pf, ups := proveF2(t, b, f, u)
	stale := b
	stale.Version++
	v := freshF2Verifier(t, stale, f, u, ups)
	if err := stale.Verify(pf, v); !errors.Is(err, fs.ErrBinding) {
		t.Fatalf("verify with stale binding: got %v, want ErrBinding", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	f := field.Mersenne()
	u := uint64(1) << 8
	b := testBinding(f, u)
	pf, ups := proveF2(t, b, f, u)
	for _, tamper := range []func(p *fs.Proof){
		func(p *fs.Proof) { p.Messages[0].Elems[0]++ },
		func(p *fs.Proof) { p.Messages[len(p.Messages)-1].Elems[0] ^= 1 },
		func(p *fs.Proof) { p.Digest[0] ^= 0x80 },
		func(p *fs.Proof) { p.Messages = p.Messages[:len(p.Messages)-1] },
		func(p *fs.Proof) { p.Messages = append(p.Messages, core.Msg{Elems: []field.Elem{1, 2, 3}}) },
	} {
		clone, err := fs.DecodeProof(pf.Encode())
		if err != nil {
			t.Fatal(err)
		}
		tamper(clone)
		v := freshF2Verifier(t, b, f, u, ups)
		if err := b.Verify(clone, v); err == nil {
			t.Fatal("tampered proof verified")
		}
	}
}

func TestProofCodecRoundTrip(t *testing.T) {
	f := field.Mersenne()
	u := uint64(1) << 8
	b := testBinding(f, u)
	b.Query = fs.Query{Kind: 13, A: 1, B: 2, K: -3, Phi: 0.25, Circuit: "MATMUL"}
	pf, _ := proveF2(t, b, f, u)
	pf.Query = b.Query // codec test only; not re-verified
	enc := pf.Encode()
	if len(enc) != pf.EncodedSize() {
		t.Fatalf("EncodedSize %d != len(Encode) %d", pf.EncodedSize(), len(enc))
	}
	dec, err := fs.DecodeProof(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Binding != pf.Binding || dec.Digest != pf.Digest || len(dec.Messages) != len(pf.Messages) {
		t.Fatal("decode did not round-trip")
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encode is not the identity")
	}
	// Truncations and trailing garbage are rejected.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := fs.DecodeProof(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	if _, err := fs.DecodeProof(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

package fs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/field"
)

// Query is the canonical query descriptor a proof is bound to. It
// mirrors the engine's (QueryKind, QueryParams) pair without importing
// the engine (fs sits below it in the layering).
type Query struct {
	Kind    uint8
	A, B    uint64
	K       int64
	Phi     float64
	Circuit string
}

// Encode returns the canonical fixed-width encoding used for transcript
// absorption, cache keys, and the wire codec. It is injective: distinct
// queries never encode equal.
func (q Query) Encode() []byte {
	b := make([]byte, 0, 1+8*4+8+len(q.Circuit))
	b = append(b, q.Kind)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		b = append(b, w[:]...)
	}
	put(q.A)
	put(q.B)
	put(uint64(q.K))
	put(math.Float64bits(q.Phi))
	put(uint64(len(q.Circuit)))
	return append(b, q.Circuit...)
}

// maxCircuitName bounds the circuit family name, matching the wire
// layer's query codec.
const maxCircuitName = 64

func decodeQueryDesc(b []byte) (Query, []byte, error) {
	if len(b) < 1+8*5 {
		return Query{}, nil, errors.New("fs: query descriptor truncated")
	}
	var q Query
	q.Kind = b[0]
	b = b[1:]
	take := func() uint64 {
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v
	}
	q.A = take()
	q.B = take()
	q.K = int64(take())
	q.Phi = math.Float64frombits(take())
	n := take()
	if n > maxCircuitName || uint64(len(b)) < n {
		return Query{}, nil, errors.New("fs: query circuit name overflows descriptor")
	}
	q.Circuit = string(b[:n])
	return q, b[n:], nil
}

// Binding names the immutable context a proof commits to: the field,
// the universe, one version of one dataset, and one query. Both ends
// derive the verifier's randomness from it, so agreeing on the binding
// IS agreeing on the challenges.
type Binding struct {
	Modulus  uint64
	Universe uint64
	Dataset  string
	Version  uint64
	Query    Query
}

// transcriptDomain versions the whole transcript schedule; bump it if
// the absorption order ever changes.
const transcriptDomain = "sip/fs/v1"

// Transcript returns the seed transcript for the binding. The
// absorption order is fixed — modulus, universe, dataset, version,
// query — and documented in DESIGN.md; the version is absorbed before
// the RNG is split off, which is what binds the dataset version into
// the first (and every) challenge.
func (b Binding) Transcript() *Transcript {
	t := New(transcriptDomain)
	t.AbsorbUint("modulus", b.Modulus)
	t.AbsorbUint("universe", b.Universe)
	t.AbsorbBytes("dataset", []byte(b.Dataset))
	t.AbsorbUint("version", b.Version)
	t.AbsorbBytes("query", b.Query.Encode())
	return t
}

// RNG returns the deterministic challenge stream for the binding. A
// verifier constructed with it draws exactly the randomness an
// interactive verifier would have drawn from a secret RNG.
func (b Binding) RNG() field.RNG { return b.Transcript().RNG("challenge") }

// Proof is one recorded prover conversation: the binding, every prover
// message in order, and the transcript digest after absorbing them all.
// The digest is a tamper-evidence checksum — verification replays the
// messages through a real verifier session and recomputes it.
type Proof struct {
	Binding
	Messages []core.Msg
	Digest   [32]byte
}

// Prove runs a complete conversation between p and v, which MUST have
// been built for this binding (v from b.RNG(), p over the dataset state
// at b.Version), and returns the recorded proof. Because v checks every
// message as it is recorded, generation self-verifies: a proof is never
// produced from a conversation the verifier would reject.
func (b Binding) Prove(p core.ProverSession, v core.VerifierSession) (*Proof, error) {
	t := b.Transcript()
	msg, err := p.Open()
	if err != nil {
		return nil, err
	}
	t.AbsorbMsg("prover", msg)
	msgs := []core.Msg{msg}
	ch, done, err := v.Begin(msg)
	for err == nil && !done {
		if msg, err = p.Step(ch); err != nil {
			break
		}
		t.AbsorbMsg("prover", msg)
		msgs = append(msgs, msg)
		ch, done, err = v.Step(msg)
	}
	if err != nil {
		return nil, err
	}
	return &Proof{Binding: b, Messages: msgs, Digest: t.Digest()}, nil
}

// ErrBinding reports a proof whose header does not match the binding
// the verifier expects — wrong dataset, version, query, or field.
var ErrBinding = errors.New("fs: proof binding mismatch")

// Verify replays the proof against v, which must have been built from
// b.RNG() and must have observed the stream the proof claims to cover.
// It checks (1) the proof's header equals b, (2) the verifier accepts
// every message and finishes exactly at the last one, and (3) the
// recomputed transcript digest equals the recorded one. Any flipped bit
// in the proof fails at least one of the three.
func (b Binding) Verify(pf *Proof, v core.VerifierSession) error {
	if pf.Binding != b {
		return fmt.Errorf("%w: proof is for %q v%d query kind %d", ErrBinding,
			pf.Dataset, pf.Version, pf.Query.Kind)
	}
	if len(pf.Messages) == 0 {
		return fmt.Errorf("%w: empty proof", core.ErrRejected)
	}
	t := b.Transcript()
	t.AbsorbMsg("prover", pf.Messages[0])
	_, done, err := v.Begin(pf.Messages[0])
	for _, msg := range pf.Messages[1:] {
		if err == nil && done {
			return fmt.Errorf("%w: trailing messages after verifier finished", core.ErrRejected)
		}
		if err != nil {
			return err
		}
		t.AbsorbMsg("prover", msg)
		_, done, err = v.Step(msg)
	}
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("%w: proof truncated before verifier finished", core.ErrRejected)
	}
	if t.Digest() != pf.Digest {
		return fmt.Errorf("%w: transcript digest mismatch", core.ErrRejected)
	}
	return nil
}

// Proof codec: a versioned magic, the binding, the message list, and
// the digest, all fixed-width little-endian. The encoding is injective
// and Decode rejects anything Encode cannot produce (bad magic, length
// overflows, trailing bytes), so decode→re-encode is the identity.
var proofMagic = [6]byte{'S', 'I', 'P', 'P', 'F', '1'}

// Codec bounds. A real proof has O(log u · log n) messages of O(1)
// elements; these limits are generous while keeping a hostile length
// field from allocating gigabytes.
const (
	maxProofMessages = 1 << 14
	maxProofWords    = 1 << 22 // total ints+elems across all messages
	maxDatasetName   = 255
)

// EncodedSize returns len(p.Encode()) without building it.
func (p *Proof) EncodedSize() int {
	n := len(proofMagic) + 8*3 + 1 + len(p.Dataset) + len(p.Query.Encode()) + 8 + 32
	for _, m := range p.Messages {
		n += 16 + 8*(len(m.Ints)+len(m.Elems))
	}
	return n
}

// Encode serializes the proof.
func (p *Proof) Encode() []byte {
	b := make([]byte, 0, p.EncodedSize())
	b = append(b, proofMagic[:]...)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		b = append(b, w[:]...)
	}
	put(p.Modulus)
	put(p.Universe)
	put(p.Version)
	b = append(b, byte(len(p.Dataset)))
	b = append(b, p.Dataset...)
	b = append(b, p.Query.Encode()...)
	put(uint64(len(p.Messages)))
	for _, m := range p.Messages {
		put(uint64(len(m.Ints)))
		for _, v := range m.Ints {
			put(v)
		}
		put(uint64(len(m.Elems)))
		for _, e := range m.Elems {
			put(uint64(e))
		}
	}
	return append(b, p.Digest[:]...)
}

// DecodeProof parses an encoded proof, rejecting malformed, truncated,
// or oversized input and any trailing bytes.
func DecodeProof(b []byte) (*Proof, error) {
	if len(b) < len(proofMagic) || !bytes.Equal(b[:len(proofMagic)], proofMagic[:]) {
		return nil, errors.New("fs: bad proof magic")
	}
	b = b[len(proofMagic):]
	p := &Proof{}
	need := func(n int) error {
		if len(b) < n {
			return errors.New("fs: proof truncated")
		}
		return nil
	}
	take := func() uint64 {
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v
	}
	if err := need(8*3 + 1); err != nil {
		return nil, err
	}
	p.Modulus = take()
	p.Universe = take()
	p.Version = take()
	nameLen := int(b[0])
	b = b[1:]
	if err := need(nameLen); err != nil {
		return nil, err
	}
	p.Dataset = string(b[:nameLen])
	b = b[nameLen:]
	var err error
	if p.Query, b, err = decodeQueryDesc(b); err != nil {
		return nil, err
	}
	if err := need(8); err != nil {
		return nil, err
	}
	nMsgs := take()
	if nMsgs > maxProofMessages {
		return nil, fmt.Errorf("fs: proof claims %d messages (max %d)", nMsgs, maxProofMessages)
	}
	p.Messages = make([]core.Msg, 0, nMsgs)
	words := uint64(0)
	takeVec := func() ([]uint64, error) {
		if err := need(8); err != nil {
			return nil, err
		}
		n := take()
		// Bound n before accumulating: words += n could wrap uint64 and
		// slip past the budget check, and int(n)*8 below must not
		// overflow. After this check n ≤ maxProofWords, so both are safe.
		if n > maxProofWords || words+n > maxProofWords {
			return nil, errors.New("fs: proof word count overflows limit")
		}
		words += n
		if err := need(int(n) * 8); err != nil {
			return nil, err
		}
		vec := make([]uint64, n)
		for i := range vec {
			vec[i] = take()
		}
		return vec, nil
	}
	for i := uint64(0); i < nMsgs; i++ {
		var m core.Msg
		ints, err := takeVec()
		if err != nil {
			return nil, err
		}
		if len(ints) > 0 {
			m.Ints = ints
		}
		elems, err := takeVec()
		if err != nil {
			return nil, err
		}
		if len(elems) > 0 {
			m.Elems = make([]field.Elem, len(elems))
			for j, v := range elems {
				m.Elems[j] = field.Elem(v)
			}
		}
		p.Messages = append(p.Messages, m)
	}
	if err := need(32); err != nil {
		return nil, err
	}
	copy(p.Digest[:], b)
	if len(b) != 32 {
		return nil, errors.New("fs: trailing bytes after proof")
	}
	return p, nil
}

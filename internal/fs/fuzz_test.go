package fs_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fs"
)

// FuzzDecodeProof checks the proof codec never panics, rejects
// truncation/oversize, and satisfies decode→re-encode identity: any
// bytes DecodeProof accepts must re-encode to exactly those bytes.
func FuzzDecodeProof(fz *testing.F) {
	small := &fs.Proof{
		Binding: fs.Binding{
			Modulus: 7, Universe: 4, Dataset: "d", Version: 1,
			Query: fs.Query{Kind: 2, A: 1, K: -1, Phi: 0.5, Circuit: "F2"},
		},
		Messages: []core.Msg{
			{Ints: []uint64{3}, Elems: []field.Elem{1, 2}},
			{Elems: []field.Elem{5}},
		},
	}
	fz.Add(small.Encode())
	fz.Add(small.Encode()[:10])
	fz.Add([]byte("SIPPF1"))
	fz.Add(wordCountWrapPayload())
	fz.Fuzz(func(t *testing.T, data []byte) {
		pf, err := fs.DecodeProof(data)
		if err != nil {
			return
		}
		re := pf.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("decode→re-encode not identity:\n in: %x\nout: %x", data, re)
		}
		if len(re) != pf.EncodedSize() {
			t.Fatalf("EncodedSize %d != %d", pf.EncodedSize(), len(re))
		}
	})
}

// wordCountWrapPayload builds a proof whose message vector lengths sum
// past 2^64: a first vector of 1 word followed by one claiming 2^64-1,
// so a naive accumulator wraps to 0 and a naive int(n)*8 goes negative.
func wordCountWrapPayload() []byte {
	b := []byte("SIPPF1")
	put := func(v uint64) {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], v)
		b = append(b, w[:]...)
	}
	put(7)           // modulus
	put(4)           // universe
	put(1)           // version
	b = append(b, 0) // empty dataset name
	b = append(b, 2) // query kind
	put(0)           // A
	put(0)           // B
	put(0)           // K
	put(0)           // Phi
	put(0)           // circuit name length
	put(1)           // message count
	put(1)           // ints length
	put(42)          // the one int
	put(^uint64(0))  // elems length 2^64-1: wraps the word accumulator
	return b
}

// TestDecodeProofWordCountWrap pins the uint64-wrap rejection: the
// crafted payload must fail cleanly instead of panicking in makeslice.
func TestDecodeProofWordCountWrap(t *testing.T) {
	if _, err := fs.DecodeProof(wordCountWrapPayload()); err == nil {
		t.Fatal("DecodeProof accepted a word count that wraps uint64")
	}
}

package fs_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fs"
)

// FuzzDecodeProof checks the proof codec never panics, rejects
// truncation/oversize, and satisfies decode→re-encode identity: any
// bytes DecodeProof accepts must re-encode to exactly those bytes.
func FuzzDecodeProof(fz *testing.F) {
	small := &fs.Proof{
		Binding: fs.Binding{
			Modulus: 7, Universe: 4, Dataset: "d", Version: 1,
			Query: fs.Query{Kind: 2, A: 1, K: -1, Phi: 0.5, Circuit: "F2"},
		},
		Messages: []core.Msg{
			{Ints: []uint64{3}, Elems: []field.Elem{1, 2}},
			{Elems: []field.Elem{5}},
		},
	}
	fz.Add(small.Encode())
	fz.Add(small.Encode()[:10])
	fz.Add([]byte("SIPPF1"))
	fz.Fuzz(func(t *testing.T, data []byte) {
		pf, err := fs.DecodeProof(data)
		if err != nil {
			return
		}
		re := pf.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("decode→re-encode not identity:\n in: %x\nout: %x", data, re)
		}
		if len(re) != pf.EncodedSize() {
			t.Fatalf("EncodedSize %d != %d", pf.EncodedSize(), len(re))
		}
	})
}

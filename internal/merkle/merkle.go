// Package merkle implements Merkle hash trees over SHA-256 — the
// cryptographic commitment machinery referenced twice by the paper:
//
//   - as prior work (§1): Merkle-tree–based query authentication [19, 20,
//     22] requires the maintainer of the root to keep state linear in the
//     tree, which is exactly the limitation the streaming interactive
//     proofs remove. UpdateCost documents and the tests demonstrate the
//     contrast: updating one leaf requires the whole authentication path,
//     and recomputing the root from scratch requires every leaf.
//   - as the commitment layer of the Universal Argument construction
//     behind Theorem 2 (Appendix A): the prover Merkle-commits to a PCP
//     string and opens the queried positions with logarithmic
//     authentication paths. Commit/Open/VerifyOpen implement precisely
//     that interface. The PCP itself is out of scope (the paper calls the
//     construction impractical even in principle — see DESIGN.md's
//     substitution note); the commitment layer is what a practical system
//     would reuse.
//
// Unlike the algebraic hash tree of internal/hashtree, security here is
// computational (collision resistance of SHA-256), matching Theorem 2's
// "computationally sound" qualifier.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Digest is a SHA-256 output.
type Digest = [sha256.Size]byte

// Tree is a full binary Merkle tree over byte-string leaves. Leaves are
// domain-separated from internal nodes to prevent second-preimage
// shenanigans.
type Tree struct {
	levels [][]Digest // levels[0] = hashed leaves, last = root
	n      int        // original (unpadded) leaf count
}

var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

func hashLeaf(data []byte) Digest {
	h := sha256.New()
	h.Write(leafPrefix)
	h.Write(data)
	var d Digest
	h.Sum(d[:0])
	return d
}

func hashNode(l, r Digest) Digest {
	h := sha256.New()
	h.Write(nodePrefix)
	h.Write(l[:])
	h.Write(r[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// Build constructs a tree over the leaves, padding to the next power of
// two with empty-leaf hashes.
func Build(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("merkle: no leaves")
	}
	n := len(leaves)
	size := 1
	for size < n {
		size *= 2
	}
	level := make([]Digest, size)
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	for i := n; i < size; i++ {
		level[i] = hashLeaf(nil)
	}
	t := &Tree{n: n}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Digest, len(level)/2)
		for i := range next {
			next[i] = hashNode(level[2*i], level[2*i+1])
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root — the commitment.
func (t *Tree) Root() Digest { return t.levels[len(t.levels)-1][0] }

// Len returns the number of (unpadded) leaves.
func (t *Tree) Len() int { return t.n }

// Height returns the path length from leaf to root.
func (t *Tree) Height() int { return len(t.levels) - 1 }

// Proof returns the authentication path for leaf i: the sibling digest at
// every level, leaf-to-root. Length O(log n) — the property the Universal
// Argument uses to keep communication logarithmic.
func (t *Tree) Proof(i uint64) ([]Digest, error) {
	if i >= uint64(len(t.levels[0])) {
		return nil, fmt.Errorf("merkle: leaf %d out of range", i)
	}
	path := make([]Digest, 0, t.Height())
	idx := i
	for lvl := 0; lvl < t.Height(); lvl++ {
		path = append(path, t.levels[lvl][idx^1])
		idx >>= 1
	}
	return path, nil
}

// VerifyProof checks an authentication path against a root.
func VerifyProof(root Digest, leaf []byte, i uint64, path []Digest) bool {
	d := hashLeaf(leaf)
	idx := i
	for _, sib := range path {
		if idx&1 == 0 {
			d = hashNode(d, sib)
		} else {
			d = hashNode(sib, d)
		}
		idx >>= 1
	}
	return d == root
}

// UpdateCost returns how many digests a maintainer must store to update
// leaf i and refresh the root: the full authentication frontier, i.e.
// Θ(n) over arbitrary update sequences. This is the "linear space for the
// verifier" limitation of Merkle-based stream authentication ([19, 22])
// that the paper's protocols eliminate; it exists to make the comparison
// concrete in benchmarks and documentation.
func (t *Tree) UpdateCost() int {
	total := 0
	for _, lvl := range t.levels {
		total += len(lvl)
	}
	return total
}

// ---------------------------------------------------------------------
// Commitment interface (Theorem 2's Universal Argument layer)

// Commitment is a Merkle commitment to a word string (e.g. a PCP proof).
type Commitment struct {
	tree *Tree
}

// Opening reveals one committed word with its authentication path.
type Opening struct {
	Index uint64
	Word  uint64
	Path  []Digest
}

// Commit builds a commitment to the word string.
func Commit(words []uint64) (*Commitment, Digest, error) {
	leaves := make([][]byte, len(words))
	for i, w := range words {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		leaves[i] = bytes.Clone(b[:])
	}
	t, err := Build(leaves)
	if err != nil {
		return nil, Digest{}, err
	}
	return &Commitment{tree: t}, t.Root(), nil
}

// Open produces the opening for position i.
func (c *Commitment) Open(i uint64) (Opening, error) {
	if i >= uint64(c.tree.Len()) {
		return Opening{}, fmt.Errorf("merkle: open %d out of range %d", i, c.tree.Len())
	}
	path, err := c.tree.Proof(i)
	if err != nil {
		return Opening{}, err
	}
	// Recover the committed word from the leaf store is the caller's job;
	// the commitment retains only hashes, so the caller supplies words at
	// verification. To keep Open self-contained we re-derive nothing and
	// return the path only; Word must be filled by the committer.
	return Opening{Index: i, Path: path}, nil
}

// VerifyOpen checks that the opening reveals word at index under root.
func VerifyOpen(root Digest, o Opening) bool {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], o.Word)
	return VerifyProof(root, b[:], o.Index, o.Path)
}

// PathWords returns the communication cost of one opening in 8-byte
// words: the index, the word, and 4 words per digest.
func (o Opening) PathWords() int { return 2 + 4*len(o.Path) }

// MinHeightFor returns ⌈log2 n⌉, the path length for n leaves.
func MinHeightFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

package merkle

import (
	"fmt"
	"testing"
)

func leavesOf(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestBuildAndVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100} {
		leaves := leavesOf(n)
		tree, err := Build(leaves)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			path, err := tree.Proof(uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if len(path) != tree.Height() {
				t.Fatalf("n=%d: path length %d, want %d", n, len(path), tree.Height())
			}
			if !VerifyProof(root, leaves[i], uint64(i), path) {
				t.Fatalf("n=%d: valid proof for leaf %d rejected", n, i)
			}
			// Wrong leaf content must fail.
			if VerifyProof(root, []byte("evil"), uint64(i), path) {
				t.Fatalf("n=%d: forged leaf accepted at %d", n, i)
			}
			// Wrong position must fail (except trivially identical paths).
			if n > 1 && VerifyProof(root, leaves[i], uint64(i)^1, path) {
				t.Fatalf("n=%d: wrong position accepted at %d", n, i)
			}
		}
	}
	if _, err := Build(nil); err == nil {
		t.Error("empty build accepted")
	}
}

func TestProofTamperRejected(t *testing.T) {
	tree, err := Build(leavesOf(16))
	if err != nil {
		t.Fatal(err)
	}
	path, err := tree.Proof(5)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := range path {
		bad := append([]Digest(nil), path...)
		bad[lvl][0] ^= 1
		if VerifyProof(tree.Root(), []byte("leaf-5"), 5, bad) {
			t.Fatalf("tampered digest at level %d accepted", lvl)
		}
	}
	if _, err := tree.Proof(99); err == nil {
		t.Error("out-of-range proof accepted")
	}
}

func TestDeterministicRoot(t *testing.T) {
	a, err := Build(leavesOf(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(leavesOf(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != b.Root() {
		t.Fatal("same leaves gave different roots")
	}
	c, err := Build(leavesOf(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() == c.Root() {
		t.Fatal("different leaf sets gave the same root")
	}
}

// TestCommitment exercises the Universal-Argument commitment layer.
func TestCommitment(t *testing.T) {
	words := make([]uint64, 64)
	for i := range words {
		words[i] = uint64(i * i)
	}
	com, root, err := Commit(words)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []uint64{0, 1, 31, 63} {
		o, err := com.Open(i)
		if err != nil {
			t.Fatal(err)
		}
		o.Word = words[i]
		if !VerifyOpen(root, o) {
			t.Fatalf("valid opening at %d rejected", i)
		}
		o.Word++
		if VerifyOpen(root, o) {
			t.Fatalf("forged opening at %d accepted", i)
		}
		// Logarithmic opening size — the Theorem-2 communication bound.
		if o.PathWords() > 2+4*MinHeightFor(len(words)) {
			t.Fatalf("opening cost %d words not logarithmic", o.PathWords())
		}
	}
	if _, err := com.Open(64); err == nil {
		t.Error("out-of-range open accepted")
	}
}

// TestLinearMaintainerCost documents the prior-work limitation: the
// update frontier is linear in the tree, unlike the O(log u) algebraic
// root of internal/hashtree.
func TestLinearMaintainerCost(t *testing.T) {
	small, err := Build(leavesOf(64))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(leavesOf(1024))
	if err != nil {
		t.Fatal(err)
	}
	if big.UpdateCost() < 10*small.UpdateCost() {
		t.Fatalf("update cost did not grow linearly: %d vs %d", small.UpdateCost(), big.UpdateCost())
	}
}

func TestMinHeightFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10}
	for n, want := range cases {
		if got := MinHeightFor(n); got != want {
			t.Errorf("MinHeightFor(%d) = %d, want %d", n, got, want)
		}
	}
}

package kvstore

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

func setup(t *testing.T, budget int) (*Client, *Cloud, map[uint64]uint64) {
	t.Helper()
	const u = 1 << 10
	client, err := NewClient(f61, u, budget, field.NewSplitMix64(950))
	if err != nil {
		t.Fatal(err)
	}
	cloud := NewCloud(u)
	pairs, err := stream.DistinctKV(u, 100, u-1, field.NewSplitMix64(951))
	if err != nil {
		t.Fatal(err)
	}
	kv := map[uint64]uint64{}
	for _, p := range pairs {
		if err := client.Put(cloud, p.Key, p.Value); err != nil {
			t.Fatal(err)
		}
		kv[p.Key] = p.Value
	}
	return client, cloud, kv
}

func TestGet(t *testing.T) {
	client, cloud, kv := setup(t, 4)
	var someKey uint64
	for k := range kv {
		someKey = k
		break
	}
	val, found, stats, err := client.Get(cloud, someKey)
	if err != nil {
		t.Fatalf("get rejected: %v", err)
	}
	if !found || val != kv[someKey] {
		t.Fatalf("get(%d) = (%d,%v), want (%d,true)", someKey, val, found, kv[someKey])
	}
	if stats.CommBytes() > 2048 {
		t.Errorf("get cost %d bytes; expected well under 2KB", stats.CommBytes())
	}
	// Absent key.
	var absent uint64
	for k := uint64(0); k < 1<<10; k++ {
		if _, ok := kv[k]; !ok {
			absent = k
			break
		}
	}
	_, found, _, err = client.Get(cloud, absent)
	if err != nil {
		t.Fatalf("absent get rejected: %v", err)
	}
	if found {
		t.Fatal("absent key reported found")
	}
	if client.RemainingQueries() != 2 {
		t.Fatalf("remaining = %d, want 2", client.RemainingQueries())
	}
}

func TestOrderedOps(t *testing.T) {
	client, cloud, kv := setup(t, 4)
	// Reference sorted keys.
	var maxKey uint64
	for k := range kv {
		if k > maxKey {
			maxKey = k
		}
	}
	prev, found, _, err := client.PrevKey(cloud, maxKey)
	if err != nil || !found || prev != maxKey {
		t.Fatalf("PrevKey(max) = (%d,%v), %v", prev, found, err)
	}
	next, found, _, err := client.NextKey(cloud, 0)
	if err != nil || !found {
		t.Fatalf("NextKey(0) failed: %v", err)
	}
	var minKey uint64 = 1 << 10
	for k := range kv {
		if k < minKey {
			minKey = k
		}
	}
	if next != minKey {
		t.Fatalf("NextKey(0) = %d, want %d", next, minKey)
	}
}

func TestRangeAndSum(t *testing.T) {
	client, cloud, kv := setup(t, 4)
	lo, hi := uint64(100), uint64(600)
	pairs, _, err := client.Range(cloud, lo, hi)
	if err != nil {
		t.Fatalf("range rejected: %v", err)
	}
	wantCount := 0
	var wantSum int64
	for k, v := range kv {
		if k >= lo && k <= hi {
			wantCount++
			wantSum += int64(v)
		}
	}
	if len(pairs) != wantCount {
		t.Fatalf("range returned %d pairs, want %d", len(pairs), wantCount)
	}
	for _, p := range pairs {
		if kv[p.Key] != p.Value {
			t.Fatalf("range pair %d = %d, want %d", p.Key, p.Value, kv[p.Key])
		}
	}
	sum, _, err := client.SumRange(cloud, lo, hi)
	if err != nil {
		t.Fatalf("sum rejected: %v", err)
	}
	if sum != wantSum {
		t.Fatalf("sum = %d, want %d", sum, wantSum)
	}
}

func TestTopKeys(t *testing.T) {
	const u = 512
	client, err := NewClient(f61, u, 1, field.NewSplitMix64(952))
	if err != nil {
		t.Fatal(err)
	}
	cloud := NewCloud(u)
	// One dominant value.
	if err := client.Put(cloud, 7, 400); err != nil {
		t.Fatal(err)
	}
	for k := uint64(10); k < 20; k++ {
		if err := client.Put(cloud, k, 5); err != nil {
			t.Fatal(err)
		}
	}
	top, _, err := client.TopKeys(cloud, 0.5)
	if err != nil {
		t.Fatalf("top-keys rejected: %v", err)
	}
	if len(top) != 1 || top[0].Index != 7 || top[0].Count != 400 {
		t.Fatalf("top = %+v", top)
	}
}

// TestCheatingCloudCaught: the cloud rewrites a stored value; every query
// touching it is rejected.
func TestCheatingCloudCaught(t *testing.T) {
	client, cloud, kv := setup(t, 2)
	var someKey uint64
	for k := range kv {
		someKey = k
		break
	}
	// The cloud silently replaces the stored log entry for someKey.
	for i := range cloud.Log {
		if cloud.Log[i].Index == someKey {
			cloud.Log[i].Delta++
		}
	}
	if _, _, _, err := client.Get(cloud, someKey); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("cheating cloud not rejected: %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	client, cloud, _ := setup(t, 1)
	if _, _, _, err := client.Get(cloud, 1); err != nil && !errors.Is(err, core.ErrRejected) {
		t.Fatalf("first query failed unexpectedly: %v", err)
	}
	if _, _, _, err := client.Get(cloud, 2); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second query should exhaust budget: %v", err)
	}
	if _, err := NewClient(f61, 64, 0, field.NewSplitMix64(1)); err == nil {
		t.Error("zero budget accepted")
	}
}

// Package kvstore implements the paper's motivating example (§1): a
// Dynamo-style key–value store outsourced to an untrusted cloud, where
// every operation the cloud answers is verified by a streaming
// interactive proof.
//
// The data owner (Client) never stores the data. While uploading puts it
// maintains only O(log u) verification summaries; afterwards it can run
// verified get / previous-key / next-key / range / range-sum / top-keys
// queries against the cloud.
//
// Multiple queries: as the paper's §7 discusses, re-running a protocol
// with the same verifier randomness is unsafe — after a conversation the
// prover has seen the random point. The remedy the paper prescribes
// ("V can just carry out multiple independent copies of the protocol,
// [each] only O(log u) space") is implemented literally: the client keeps
// a budget of independent verifier bundles, all fed by the stream, and
// each query consumes one.
package kvstore

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

// ErrBudgetExhausted is returned when all verifier bundles are used.
var ErrBudgetExhausted = errors.New("kvstore: query budget exhausted (create the client with a larger budget)")

// Cloud is the untrusted storage provider: it retains the full update
// log and constructs honest provers on demand. A dishonest cloud is
// modeled by mutating Log before querying (see the tamper example).
type Cloud struct {
	U   uint64
	Log []stream.Update // +1-shifted dictionary updates, one per put
	Raw []stream.Update // unshifted (key, value) updates
}

// bundle is one single-use set of independent verifiers.
type bundle struct {
	dict *core.DictionaryVerifier
	pred *core.PredecessorVerifier
	succ *core.SuccessorVerifier
	rq   *core.SubVectorVerifier
	rs   *core.RangeSumVerifier
	hh   *core.HeavyHittersVerifier
}

// Client is the data owner.
type Client struct {
	f field.Field
	u uint64

	dictProto *core.Dictionary
	predProto *core.Predecessor
	succProto *core.Successor
	rqProto   *core.SubVector
	rsProto   *core.RangeSum
	hhProto   *core.HeavyHitters

	bundles []bundle
	next    int
	keys    int
}

// NewClient creates a client for keys and values in [0, u) with the given
// query budget, sampling all verifier randomness from rng up front.
func NewClient(f field.Field, u uint64, budget int, rng field.RNG) (*Client, error) {
	if budget < 1 {
		return nil, fmt.Errorf("kvstore: budget %d < 1", budget)
	}
	c := &Client{f: f, u: u}
	var err error
	if c.dictProto, err = core.NewDictionary(f, u); err != nil {
		return nil, err
	}
	if c.predProto, err = core.NewPredecessor(f, u); err != nil {
		return nil, err
	}
	if c.succProto, err = core.NewSuccessor(f, u); err != nil {
		return nil, err
	}
	if c.rqProto, err = core.NewRangeQuery(f, u); err != nil {
		return nil, err
	}
	if c.rsProto, err = core.NewRangeSum(f, u); err != nil {
		return nil, err
	}
	if c.hhProto, err = core.NewHeavyHitters(f, u); err != nil {
		return nil, err
	}
	c.bundles = make([]bundle, budget)
	for i := range c.bundles {
		c.bundles[i] = bundle{
			dict: c.dictProto.NewVerifier(rng),
			pred: c.predProto.NewVerifier(rng),
			succ: c.succProto.NewVerifier(rng),
			rq:   c.rqProto.NewVerifier(rng),
			rs:   c.rsProto.NewVerifier(rng),
			hh:   c.hhProto.NewVerifier(rng),
		}
	}
	return c, nil
}

// NewCloud creates an empty store for the same universe.
func NewCloud(u uint64) *Cloud { return &Cloud{U: u} }

// Put uploads one (key, value) pair: the cloud stores it, the client only
// folds it into its summaries. Keys must be distinct (the DICTIONARY
// promise); values must be < u.
func (c *Client) Put(cloud *Cloud, key, value uint64) error {
	shifted, err := c.dictProto.PutUpdate(key, value)
	if err != nil {
		return err
	}
	raw := stream.Update{Index: key, Delta: int64(value)}
	for i := range c.bundles {
		b := &c.bundles[i]
		if err := b.dict.Observe(shifted); err != nil {
			return err
		}
		if err := b.pred.Observe(shifted); err != nil {
			return err
		}
		if err := b.succ.Observe(shifted); err != nil {
			return err
		}
		if err := b.rq.Observe(shifted); err != nil {
			return err
		}
		if err := b.rs.Observe(raw); err != nil {
			return err
		}
		if err := b.hh.Observe(raw); err != nil {
			return err
		}
	}
	cloud.Log = append(cloud.Log, shifted)
	cloud.Raw = append(cloud.Raw, raw)
	c.keys++
	return nil
}

// Keys returns the number of puts so far.
func (c *Client) Keys() int { return c.keys }

// RemainingQueries returns how many verified queries the client can still
// issue.
func (c *Client) RemainingQueries() int { return len(c.bundles) - c.next }

func (c *Client) take() (*bundle, error) {
	if c.next >= len(c.bundles) {
		return nil, ErrBudgetExhausted
	}
	b := &c.bundles[c.next]
	c.next++
	return b, nil
}

// Get retrieves and verifies the value stored under key.
func (c *Client) Get(cloud *Cloud, key uint64) (value uint64, found bool, stats core.Stats, err error) {
	b, err := c.take()
	if err != nil {
		return 0, false, core.Stats{}, err
	}
	p := c.dictProto.NewProver()
	for _, up := range cloud.Log {
		if err := p.Observe(up); err != nil {
			return 0, false, core.Stats{}, err
		}
	}
	if err := b.dict.SetQuery(key); err != nil {
		return 0, false, core.Stats{}, err
	}
	if err := p.SetQuery(key); err != nil {
		return 0, false, core.Stats{}, err
	}
	stats, err = core.Run(p, b.dict)
	if err != nil {
		return 0, false, stats, err
	}
	value, found, err = b.dict.Value()
	return value, found, stats, err
}

// PrevKey returns the largest stored key ≤ q, verified.
func (c *Client) PrevKey(cloud *Cloud, q uint64) (key uint64, found bool, stats core.Stats, err error) {
	b, err := c.take()
	if err != nil {
		return 0, false, core.Stats{}, err
	}
	p := c.predProto.NewProver()
	for _, up := range cloud.Log {
		if err := p.Observe(up); err != nil {
			return 0, false, core.Stats{}, err
		}
	}
	if err := b.pred.SetQuery(q); err != nil {
		return 0, false, core.Stats{}, err
	}
	if err := p.SetQuery(q); err != nil {
		return 0, false, core.Stats{}, err
	}
	stats, err = core.Run(p, b.pred)
	if err != nil {
		return 0, false, stats, err
	}
	key, found, err = b.pred.Result()
	return key, found, stats, err
}

// NextKey returns the smallest stored key ≥ q, verified.
func (c *Client) NextKey(cloud *Cloud, q uint64) (key uint64, found bool, stats core.Stats, err error) {
	b, err := c.take()
	if err != nil {
		return 0, false, core.Stats{}, err
	}
	p := c.succProto.NewProver()
	for _, up := range cloud.Log {
		if err := p.Observe(up); err != nil {
			return 0, false, core.Stats{}, err
		}
	}
	if err := b.succ.SetQuery(q); err != nil {
		return 0, false, core.Stats{}, err
	}
	if err := p.SetQuery(q); err != nil {
		return 0, false, core.Stats{}, err
	}
	stats, err = core.Run(p, b.succ)
	if err != nil {
		return 0, false, stats, err
	}
	key, found, err = b.succ.Result()
	return key, found, stats, err
}

// Pair is one key–value result of a verified range scan.
type Pair struct {
	Key, Value uint64
}

// Range returns all (key, value) pairs with lo ≤ key ≤ hi, verified.
func (c *Client) Range(cloud *Cloud, lo, hi uint64) ([]Pair, core.Stats, error) {
	b, err := c.take()
	if err != nil {
		return nil, core.Stats{}, err
	}
	p := c.rqProto.NewProver()
	for _, up := range cloud.Log {
		if err := p.Observe(up); err != nil {
			return nil, core.Stats{}, err
		}
	}
	if err := b.rq.SetQuery(lo, hi); err != nil {
		return nil, core.Stats{}, err
	}
	if err := p.SetQuery(lo, hi); err != nil {
		return nil, core.Stats{}, err
	}
	stats, err := core.Run(p, b.rq)
	if err != nil {
		return nil, stats, err
	}
	entries, err := b.rq.Result()
	if err != nil {
		return nil, stats, err
	}
	out := make([]Pair, 0, len(entries))
	for _, e := range entries {
		if e.Value < 1 {
			return nil, stats, fmt.Errorf("kvstore: malformed stored entry at key %d", e.Index)
		}
		out = append(out, Pair{Key: e.Index, Value: uint64(e.Value) - 1})
	}
	return out, stats, nil
}

// SumRange returns the verified sum of values over lo ≤ key ≤ hi.
func (c *Client) SumRange(cloud *Cloud, lo, hi uint64) (int64, core.Stats, error) {
	b, err := c.take()
	if err != nil {
		return 0, core.Stats{}, err
	}
	p := c.rsProto.NewProver()
	for _, up := range cloud.Raw {
		if err := p.Observe(up); err != nil {
			return 0, core.Stats{}, err
		}
	}
	if err := b.rs.SetQuery(lo, hi); err != nil {
		return 0, core.Stats{}, err
	}
	if err := p.SetQuery(lo, hi); err != nil {
		return 0, core.Stats{}, err
	}
	stats, err := core.Run(p, b.rs)
	if err != nil {
		return 0, stats, err
	}
	sum, err := b.rs.SignedResult()
	return sum, stats, err
}

// TopKeys returns the keys holding at least a phi fraction of the total
// stored value mass, verified complete ("the heavy hitters are the keys
// which have the largest values associated with them", §1.1).
func (c *Client) TopKeys(cloud *Cloud, phi float64) ([]core.HeavyHitter, core.Stats, error) {
	b, err := c.take()
	if err != nil {
		return nil, core.Stats{}, err
	}
	p := c.hhProto.NewProver()
	for _, up := range cloud.Raw {
		if err := p.Observe(up); err != nil {
			return nil, core.Stats{}, err
		}
	}
	if err := b.hh.SetQuery(phi); err != nil {
		return nil, core.Stats{}, err
	}
	if err := p.SetQuery(phi); err != nil {
		return nil, core.Stats{}, err
	}
	stats, err := core.Run(p, b.hh)
	if err != nil {
		return nil, stats, err
	}
	hh, _, err := b.hh.Result()
	return hh, stats, err
}

// Package engine is the persistent dataset layer of the prover service:
// ingest once, prove many.
//
// The paper's deployment model (§1) is a cloud that holds the data and
// answers many verified queries over it, with the stream pass happening
// once, as the owner uploads. The session machinery in internal/core is
// deliberately per-conversation; before this package existed the server
// re-played the entire stored stream through Observe for every query, so
// k queries cost k full re-ingestions and no two connections could share
// a dataset.
//
// A Dataset instead maintains the aggregate state every prover kind is a
// cheap function of:
//
//   - counts: the dense frequency vector a (int64 per entry) — the
//     hash-tree provers (SUB-VECTOR and friends, HEAVY HITTERS) and the
//     frequency-based provers (F0, Fmax) build their leaves/residual
//     tables from it;
//   - elems: the field image of a — the sum-check provers (Fk,
//     RANGE-SUM) take it as their table directly;
//   - total: Σδ, the stream length n for the heavy-hitters threshold φn.
//
// Updates are ingested in batches, once, through a sharded scatter
// kernel; Snapshot hands out an immutable view in O(1) (copy-on-write:
// the next ingest after a snapshot clones the tables, so readers never
// block ingestion and never observe a torn state). Snapshot.NewProver
// constructs the prover session for any QueryKind from that view without
// touching the raw stream — the engine does not even retain it.
//
// # Resource governance and durability
//
// The prover carries the O(u) state so the streaming verifier doesn't
// have to — which means a multi-tenant engine must govern that state
// explicitly or a handful of datasets exhausts the process. An Engine
// therefore runs its datasets through a resident/evicted state machine
// (see persist.go):
//
//   - SetBudget caps the aggregate bytes of resident tables; admission
//     control at Open and at rehydration evicts least-recently-used
//     datasets to disk to stay under it, and fails with ErrBudget when
//     eviction cannot make room.
//   - SetDataDir names the checkpoint directory (internal/store codec);
//     evicted datasets checkpoint there, free their tables, and
//     rehydrate transparently on the next use, with transcripts
//     bit-identical across the cycle. Each dataset carries its own
//     residency latch, so the checkpoint I/O of one dataset's
//     transition never blocks another's — concurrent rehydrations
//     overlap instead of serializing on the engine lock.
//   - AdmitBytes / ReleaseBytes charge caller-managed state (the wire
//     layer's v1 private datasets) against the same Σ budget, so every
//     byte of prover state on the server answers to one governor.
//   - Persist / StartCheckpointer write dirty datasets back on demand or
//     on an interval, and Recover rebuilds the registry from the data
//     dir after a restart, so a crash loses at most the last interval.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// Engine is a registry of named datasets sharing one field, worker
// budget, and memory budget — the multi-tenant state of a prover server.
// All methods are safe for concurrent use.
type Engine struct {
	f       field.Field
	workers int

	mu          sync.Mutex
	datasets    map[string]*Dataset
	maxDatasets int

	// releasedNames tombstones datasets handed off by Release: Open
	// refuses to recreate them (ErrReleased) so a client racing the
	// rebalance window — routed to the source after its checkpoint left —
	// fails typed instead of silently growing an orphan dataset. Adopt
	// clears the tombstone (the name came back), as does Drop (the
	// operator's escape hatch to truly forget a released name).
	releasedNames map[string]struct{}

	// Resource governance + durability (persist.go). Residency
	// transitions *begin* only with mu held — admission accounting can
	// never race a transition's start — but the checkpoint I/O of a
	// transition runs outside every lock; each dataset carries its own
	// latch (Dataset.res + resCond) that its users wait on, so k
	// transitions of distinct datasets overlap.
	budget      int64      // Σ-byte cap on resident head tables (0 = unlimited)
	resident    int64      // bytes resident or reserved (incl. external v1 reservations)
	dataDir     string     // checkpoint directory ("" = memory-only engine)
	clock       uint64     // LRU clock; bumped on every dataset touch
	transitions int        // evictions/rehydrations currently in flight
	admitCond   *sync.Cond // on mu; signaled whenever a transition settles or bytes free up

	ckptStop chan struct{} // closes to stop the background checkpointer
	ckptDone chan struct{} // closed when the checkpointer has exited
	ckptErr  error         // accumulated background persistence failures (bounded)
	ckptErrN int           // total background failures, retained or not

	// dropHooks run (outside every engine/dataset lock) whenever a named
	// dataset leaves the registry — Drop and Release — so layered caches
	// keyed by dataset name (the wire layer's proof cache) can invalidate.
	dropHooks []func(name string)
}

// New returns an empty engine. workers is handed to every prover built
// from its datasets (0 serial, n < 0 all cores; see parallel.Workers).
func New(f field.Field, workers int) *Engine {
	e := &Engine{f: f, workers: workers, datasets: make(map[string]*Dataset)}
	e.admitCond = sync.NewCond(&e.mu)
	return e
}

// SetMaxDatasets caps how many datasets Open will create (0 = no cap).
// Each dataset holds O(u) memory while resident, so a server exposed to
// untrusted clients should set a cap (and a byte budget, see SetBudget).
func (e *Engine) SetMaxDatasets(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.maxDatasets = n
}

// Open returns the named dataset, creating it (over a universe of size
// ≥ u) on first open. Re-opening attaches to the existing dataset; the
// requested universe must match the one it was created with, since the
// verifier's summaries are parameterized by it. Creation is subject to
// admission control: if the new dataset's tables would push resident
// memory past the budget, LRU datasets are evicted to disk first, and
// Open fails with ErrBudget when eviction cannot make room.
func (e *Engine) Open(name string, u uint64) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: empty dataset name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ds, ok := e.datasets[name]; ok {
		if ds.sliceHi != 0 {
			return nil, fmt.Errorf("engine: dataset %q is the slice [%d,%d) of universe %d; reattach with OpenSlice", name, ds.sliceLo, ds.sliceHi, ds.origU)
		}
		if ds.origU != u {
			return nil, fmt.Errorf("engine: dataset %q has universe %d, not %d", name, ds.origU, u)
		}
		e.touchLocked(ds)
		return ds, nil
	}
	if _, gone := e.releasedNames[name]; gone {
		return nil, fmt.Errorf("%w: dataset %q was handed off from this engine", ErrReleased, name)
	}
	if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
		return nil, fmt.Errorf("engine: dataset limit of %d reached", e.maxDatasets)
	}
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	if err := e.admitLocked(tableBytes(params.U), nil); err != nil {
		return nil, fmt.Errorf("engine: cannot admit dataset %q: %w", name, err)
	}
	// admitLocked may have released e.mu while waiting out an in-flight
	// transition: re-check the registry (a concurrent Open of the same
	// name may have won) and the cap before creating.
	if ds, ok := e.datasets[name]; ok {
		if ds.sliceHi != 0 {
			return nil, fmt.Errorf("engine: dataset %q is the slice [%d,%d) of universe %d; reattach with OpenSlice", name, ds.sliceLo, ds.sliceHi, ds.origU)
		}
		if ds.origU != u {
			return nil, fmt.Errorf("engine: dataset %q has universe %d, not %d", name, ds.origU, u)
		}
		e.touchLocked(ds)
		return ds, nil
	}
	if _, gone := e.releasedNames[name]; gone {
		return nil, fmt.Errorf("%w: dataset %q was handed off from this engine", ErrReleased, name)
	}
	if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
		return nil, fmt.Errorf("engine: dataset limit of %d reached", e.maxDatasets)
	}
	ds, err := NewDataset(e.f, u, e.workers)
	if err != nil {
		return nil, err
	}
	ds.name = name
	ds.eng = e
	e.resident += tableBytes(params.U)
	e.touchLocked(ds)
	e.datasets[name] = ds
	return ds, nil
}

// Get returns the named dataset if it exists. An evicted dataset is
// returned as-is; it rehydrates transparently on its next table use.
func (e *Engine) Get(name string) (*Dataset, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ds, ok := e.datasets[name]
	if ok {
		e.touchLocked(ds)
	}
	return ds, ok
}

// Names returns the registered dataset names, sorted.
func (e *Engine) Names() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.datasets))
	for n := range e.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OnDrop registers a hook that runs whenever a named dataset leaves the
// registry (Drop or Release), with the engine and dataset locks NOT
// held. The wire layer hooks its proof cache here, so a dataset dropped
// and re-created under the same name can never be served a stale cached
// proof. Hooks must not block for long — they run on the dropping
// goroutine.
func (e *Engine) OnDrop(fn func(name string)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropHooks = append(e.dropHooks, fn)
}

// fireDropHooks runs the registered drop hooks. Caller must hold no
// engine or dataset lock.
func (e *Engine) fireDropHooks(name string) {
	e.mu.Lock()
	hooks := e.dropHooks
	e.mu.Unlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// Drop removes the named dataset from the registry and deletes its
// checkpoint file. Snapshots already taken stay valid (they hold
// immutable state), and a still-resident *Dataset handle lives on
// unbudgeted; a handle to a dataset dropped while evicted becomes
// unusable (its tables are gone from both memory and disk). Drop waits
// out an in-flight eviction or rehydration of the dataset, so its
// accounting and its checkpoint file can never be touched by a
// transition that outlives the removal.
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	ds, ok := e.datasets[name]
	if !ok {
		delete(e.releasedNames, name)
		e.mu.Unlock()
		return
	}
	for {
		ds.mu.Lock()
		if ds.res != resEvicting && ds.res != resRehydrating {
			break
		}
		// The transition's completion needs e.mu; release it while
		// waiting on the dataset's latch, then re-evaluate with both
		// locks (a new transition could have started in between).
		e.mu.Unlock()
		ds.awaitStableLocked()
		ds.mu.Unlock()
		e.mu.Lock()
	}
	if e.datasets[name] != ds { // re-registered while we waited
		ds.mu.Unlock()
		e.mu.Unlock()
		return
	}
	delete(e.datasets, name)
	if ds.res == resResident && ds.head != nil {
		e.resident -= tableBytes(ds.params.U)
		e.admitCond.Broadcast()
	}
	ds.eng = nil
	// Wait out any in-flight checkpoint write and bar future ones, so a
	// racing background Persist cannot re-create the file after the
	// removal below and resurrect the dataset on the next Recover.
	ds.saveMu.Lock()
	ds.dropped = true
	ds.saveMu.Unlock()
	ds.mu.Unlock()
	e.removeCheckpointLocked(name)
	e.mu.Unlock()
	e.fireDropHooks(name)
}

// ---------------------------------------------------------------------

// tableBytes is the resident cost of one dataset's head tables: an int64
// count and a field.Elem per padded universe entry.
func tableBytes(paddedU uint64) int64 { return int64(paddedU) * 16 }

// tableState is one immutable-once-sealed version of a dataset's
// aggregate state. While unsealed it is mutated in place by ingestion;
// Snapshot seals it, and the next ingest clones it (copy-on-write).
type tableState struct {
	counts  []int64
	elems   []field.Elem
	total   int64
	n       uint64 // updates ingested
	version uint64 // ingest batches applied; the proof-cache key component
	sealed  bool
}

func (st *tableState) clone() *tableState {
	return &tableState{
		counts:  append([]int64(nil), st.counts...),
		elems:   append([]field.Elem(nil), st.elems...),
		total:   st.total,
		n:       st.n,
		version: st.version,
	}
}

// residency is the per-dataset state machine of the memory governor:
//
//	resident ──beginEvict──▶ evicting ──save ok──▶ evicted
//	   ▲                        │ save failed         │
//	   └────────────────────────┴──◀──rehydrate ok── rehydrating
//
// Transitions begin only under the engine lock (so admission accounting
// never races a start), but the I/O that completes them runs outside
// every lock; goroutines needing the tables wait on the dataset's own
// latch (resCond), never on the engine.
type residency int

const (
	resResident    residency = iota // tables in memory, usable
	resEvicting                     // checkpoint save in flight; tables about to be freed
	resRehydrating                  // checkpoint load + rebuild in flight
	resEvicted                      // tables on disk only
)

// Dataset is one named, persistently maintained frequency vector.
// Ingestion and snapshotting are safe for concurrent use from many
// connections. An engine-managed dataset may be evicted (head == nil,
// state on disk) between uses; every table operation rehydrates it
// transparently.
type Dataset struct {
	name    string
	f       field.Field
	params  lde.Params // ℓ=2: padded to 2^d ≥ origU, or the slice's width
	origU   uint64     // global universe size as requested (protocols are built with it)
	workers int

	// Slice bounds in the padded global universe, for datasets opened as
	// one slice of a split universe (OpenSlice). sliceHi == 0 means a
	// whole-universe dataset; for slices, params spans only the slice's
	// width and tables are indexed locally (global i at i−sliceLo).
	sliceLo, sliceHi uint64

	mu       sync.Mutex
	eng      *Engine     // nil for standalone datasets; cleared by Drop/Release
	head     *tableState // nil while evicted
	res      residency   // the dataset's residency latch state
	resCond  *sync.Cond  // on mu; broadcast on every residency transition
	detached bool        // Release ran: every table use fails with ErrReleased
	nMeta    uint64      // updates ingested, valid even while evicted
	verMeta  uint64      // dataset version, valid even while evicted
	lastUse  uint64      // LRU stamp; guarded by eng.mu, not mu

	// saveMu serializes checkpoint writes for this dataset and guards
	// the record of what is on disk, so a slow writer holding an older
	// sealed state can never clobber a newer checkpoint (saveState
	// refuses stale writes). Lock order: mu may be held when taking
	// saveMu, never the reverse.
	saveMu  sync.Mutex
	diskN   uint64 // updates covered by the newest on-disk checkpoint
	diskHas bool   // a checkpoint file exists for this dataset
	dropped bool   // Drop ran: no writer may re-create the checkpoint file
}

// NewDataset returns a standalone (unnamed) dataset over a universe of
// size ≥ u — the per-connection store of the v1 wire protocol, and the
// building block Engine.Open registers under a name. Standalone datasets
// are always resident and never budgeted.
func NewDataset(f field.Field, u uint64, workers int) (*Dataset, error) {
	ds, err := newDatasetShell(f, u, workers)
	if err != nil {
		return nil, err
	}
	ds.head = &tableState{
		counts: make([]int64, ds.params.U),
		elems:  make([]field.Elem, ds.params.U),
	}
	ds.res = resResident
	return ds, nil
}

// newDatasetShell is NewDataset without the O(u) table allocation — the
// recovery scan registers evicted datasets this way and only pays for
// tables it will actually keep resident.
func newDatasetShell(f field.Field, u uint64, workers int) (*Dataset, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{f: f, params: params, origU: u, workers: workers, res: resEvicted}
	ds.resCond = sync.NewCond(&ds.mu)
	return ds, nil
}

// Name returns the dataset's registry name ("" for standalone datasets).
func (d *Dataset) Name() string { return d.name }

// UniverseSize returns the universe the dataset was created over (before
// padding to a power of two). For a slice dataset this is the *global*
// universe of the split, not the slice width.
func (d *Dataset) UniverseSize() uint64 { return d.origU }

// Slice returns the dataset's bounds within the padded global universe.
// isSlice is false for whole-universe datasets (lo and hi are then 0).
func (d *Dataset) Slice() (lo, hi uint64, isSlice bool) {
	return d.sliceLo, d.sliceHi, d.sliceHi != 0
}

// Updates returns how many stream updates have been ingested. It does
// not rehydrate an evicted dataset — the count survives eviction.
func (d *Dataset) Updates() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nMeta
}

// awaitStableLocked blocks on the dataset's residency latch until no
// transition is in flight. Caller holds d.mu (the wait releases and
// reacquires it); on return the state is resResident or resEvicted.
// Only this dataset's users wait here — transitions of other datasets
// proceed independently.
func (d *Dataset) awaitStableLocked() {
	for d.res == resEvicting || d.res == resRehydrating {
		d.resCond.Wait()
	}
}

// withState runs fn on the dataset's live table state, waiting out an
// in-flight eviction or rehydration and rehydrating from disk first if
// the dataset is evicted. fn runs under the dataset lock and must not
// call back into the engine. The loop re-checks residency because the
// engine may evict again between the rehydrate and the lock.
func (d *Dataset) withState(fn func(*tableState) error) error {
	for {
		d.mu.Lock()
		if d.detached {
			// Release handed this dataset off to another engine; the typed
			// error tells the wire layer (and through it the router's
			// client) to retry against the dataset's new home.
			name := d.name
			d.mu.Unlock()
			return fmt.Errorf("%w: dataset %q", ErrReleased, name)
		}
		d.awaitStableLocked()
		if d.res == resResident {
			err := fn(d.head)
			d.mu.Unlock()
			return err
		}
		eng := d.eng
		d.mu.Unlock()
		if eng == nil {
			return fmt.Errorf("engine: dataset %q was dropped while evicted; its tables are gone", d.name)
		}
		if err := eng.rehydrate(d); err != nil {
			return err
		}
	}
}

// touch marks the dataset most-recently-used for the LRU policy.
func (d *Dataset) touch() {
	d.mu.Lock()
	eng := d.eng
	d.mu.Unlock()
	if eng != nil {
		eng.mu.Lock()
		eng.touchLocked(d)
		eng.mu.Unlock()
	}
}

// minShardBatch is the batch size below which the sharded scatter is not
// worth its per-worker pass over the batch.
const minShardBatch = 1 << 13

// Ingest folds a batch of updates into the maintained state. Either the
// whole batch is applied or, when any index is out of range, none of it.
func (d *Dataset) Ingest(ups []stream.Update) error {
	idx := make([]uint64, len(ups))
	deltas := make([]int64, len(ups))
	for i, up := range ups {
		idx[i], deltas[i] = up.Index, up.Delta
	}
	return d.IngestColumns(idx, deltas)
}

// IngestColumns is Ingest over parallel index/delta columns (the wire
// layer decodes straight into this shape). Large batches are applied
// through a sharded scatter: a stable O(n) counting sort groups update
// positions by contiguous index shard, then each worker applies one
// shard's updates in batch order. No two workers touch the same entry
// and per-index application order is preserved, so the result is
// identical to the serial left-to-right application for every worker
// count. An evicted dataset is rehydrated first (admission control
// applies: rehydration may fail with ErrBudget).
func (d *Dataset) IngestColumns(idx []uint64, deltas []int64) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("engine: batch has %d indices but %d deltas", len(idx), len(deltas))
	}
	// Bounds are the *requested* universe, not the padded power of two:
	// every protocol is parameterized by origU, so an update in
	// [origU, 2^d) would live in padding no verifier accounts for. A
	// slice dataset additionally owns only [sliceLo, sliceHi) of it.
	base, bound := d.sliceLo, d.origU
	if d.sliceHi != 0 && d.sliceHi < bound {
		bound = d.sliceHi
	}
	for _, i := range idx {
		if i >= d.origU {
			return fmt.Errorf("engine: index %d outside universe [0,%d)", i, d.origU)
		}
		if i < base || i >= bound {
			return fmt.Errorf("engine: index %d outside slice [%d,%d)", i, d.sliceLo, d.sliceHi)
		}
	}
	d.touch()
	return d.withState(func(st *tableState) error {
		if st.sealed {
			st = st.clone()
			d.head = st
		}
		f := d.f
		apply := func(k int) {
			i := idx[k] - base // slice tables are indexed locally
			st.counts[i] += deltas[k]
			st.elems[i] = f.Add(st.elems[i], f.FromInt64(deltas[k]))
		}
		nw := parallel.Workers(d.workers)
		if nw > 1 && len(idx) >= minShardBatch {
			// Index i belongs to shard i/width; equal-width shards keep the
			// shard computation overflow-free for any supported universe.
			u := d.params.U
			width := (u + uint64(nw) - 1) / uint64(nw)
			shard := make([]int32, len(idx))
			count := make([]int, nw)
			for k, i := range idx {
				s := int32((i - base) / width)
				shard[k] = s
				count[s]++
			}
			start := make([]int, nw+1)
			for s := 0; s < nw; s++ {
				start[s+1] = start[s] + count[s]
			}
			pos := make([]int, len(idx))
			next := append([]int(nil), start[:nw]...)
			for k := range idx {
				s := shard[k]
				pos[next[s]] = k
				next[s]++
			}
			parallel.ForGrain(nw, nw, 1, func(_, lo, hi int) {
				for s := lo; s < hi; s++ {
					for _, k := range pos[start[s]:start[s+1]] {
						apply(k)
					}
				}
			})
		} else {
			for k := range idx {
				apply(k)
			}
		}
		for _, dl := range deltas {
			st.total += dl
		}
		st.n += uint64(len(idx))
		d.nMeta = st.n
		if len(idx) > 0 || d.sliceHi != 0 {
			// Every non-empty batch rotates the dataset version, which
			// rotates the Fiat–Shamir challenge point of every cached
			// proof key — an empty batch changes no state and keeps the
			// cache warm. A slice counts *delivered* batches instead: a
			// scatter routes one global batch to every owner (some
			// sub-batches empty), so bumping per delivery keeps each slice
			// version — and hence the aggregated split version — equal to
			// the version a single engine would reach on the same stream.
			st.version++
			d.verMeta = st.version
		}
		return nil
	})
}

// Version returns the dataset's monotone version: the number of
// non-empty ingest batches applied since creation. It survives eviction
// and (via the checkpoint format) restarts, so a proof cached under
// (name, version, query) can never be served for different data.
func (d *Dataset) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.verMeta
}

// Snapshot returns an immutable view of the current state in O(1),
// rehydrating an evicted dataset first. The snapshot stays valid — and
// bit-stable — while ingestion continues and across later evictions of
// its dataset; the first ingest after a snapshot pays one O(u) table
// copy. Snapshot panics if rehydration fails (use SnapshotErr for the
// error-returning form).
func (d *Dataset) Snapshot() *Snapshot {
	s, err := d.SnapshotErr()
	if err != nil {
		panic(err)
	}
	return s
}

// SnapshotErr is Snapshot with rehydration failures (missing data dir,
// corrupt checkpoint, budget exhaustion) reported instead of panicking.
// For an always-resident dataset it cannot fail.
func (d *Dataset) SnapshotErr() (*Snapshot, error) {
	d.touch()
	var snap *Snapshot
	err := d.withState(func(st *tableState) error {
		st.sealed = true
		snap = &Snapshot{ds: d, st: st}
		return nil
	})
	return snap, err
}

// Snapshot is a frozen view of a dataset: the aggregate state all prover
// sessions for that epoch are built from. It is immutable and safe to
// share across goroutines.
type Snapshot struct {
	ds *Dataset
	st *tableState
}

// Counts returns the dense frequency vector. Read-only: callers must not
// modify it.
func (s *Snapshot) Counts() []int64 { return s.st.counts }

// Elems returns the field image of the frequency vector. Read-only.
func (s *Snapshot) Elems() []field.Elem { return s.st.elems }

// Total returns Σδ over the ingested stream (the length n of an
// insert-only stream).
func (s *Snapshot) Total() int64 { return s.st.total }

// Updates returns how many stream updates the snapshot reflects.
func (s *Snapshot) Updates() uint64 { return s.st.n }

// Version returns the dataset version the snapshot was taken at; see
// Dataset.Version.
func (s *Snapshot) Version() uint64 { return s.st.version }

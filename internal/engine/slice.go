// Slice datasets: the engine half of split-universe sharding. A huge
// dataset is split into S contiguous, aligned slices of its padded
// universe; each shard opens its slice with OpenSlice under the plain
// dataset name, ingests only the indexes it owns, and serves queries
// through Snapshot.NewPartialProver — a session whose messages are this
// slice's exact partials of the single-engine transcript (see
// internal/core's SplitAggregator for the folding side).
//
// A slice keeps the dataset's identity global: origU is the *global*
// universe (every protocol is parameterized by it) while params and the
// tables span only the slice's width, indexed locally (global i at
// i−sliceLo). Checkpoints carry the bounds (store format ≥ 3), so
// eviction, recovery, and Release/Adopt handoff all work per slice with
// the machinery whole datasets already use.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/sumcheck"
)

// ErrNotSplittable reports a query kind the split-universe seam does not
// cover: the two-phase frequency-based protocols (F0, Fmax), the
// hash-tree family, and GKR circuits need state that is not a per-slice
// partial sum. The router maps it onto a typed refusal so clients learn
// to query those kinds on unsplit datasets.
var ErrNotSplittable = errors.New("engine: query kind not covered by the split-universe seam")

// newSliceShell is newDatasetShell for one slice [lo, hi) of a split
// universe of size ≥ globalU: no table allocation, slice-width params.
func newSliceShell(f field.Field, globalU, lo, hi uint64, workers int) (*Dataset, error) {
	gp, err := lde.ParamsForUniverse(globalU, 2)
	if err != nil {
		return nil, err
	}
	sp, err := sumcheck.SliceParams(gp, lo, hi)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{f: f, params: sp, origU: globalU, sliceLo: lo, sliceHi: hi, workers: workers, res: resEvicted}
	ds.resCond = sync.NewCond(&ds.mu)
	return ds, nil
}

// OpenSlice returns the named dataset opened as the slice [lo, hi) of a
// split universe of size ≥ globalU, creating it on first open. The
// bounds are over the *padded* global universe (2^d ≥ globalU), must be
// a power-of-two width ≥ 2 aligned to itself — the discipline under
// which each sumcheck round's partial is exact. Re-opening attaches to
// the existing slice; the requested identity (global universe and both
// bounds) must match. Admission control applies as in Open, charging
// only the slice's width.
func (e *Engine) OpenSlice(name string, globalU, lo, hi uint64) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: empty dataset name")
	}
	// Validate the geometry before taking the lock.
	shell, err := newSliceShell(e.f, globalU, lo, hi, e.workers)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	attach := func(ds *Dataset) (*Dataset, error) {
		if ds.sliceHi == 0 {
			return nil, fmt.Errorf("engine: dataset %q is a whole-universe dataset, not a slice", name)
		}
		if ds.origU != globalU || ds.sliceLo != lo || ds.sliceHi != hi {
			return nil, fmt.Errorf("engine: dataset %q is the slice [%d,%d) of universe %d, not [%d,%d) of %d",
				name, ds.sliceLo, ds.sliceHi, ds.origU, lo, hi, globalU)
		}
		e.touchLocked(ds)
		return ds, nil
	}
	if ds, ok := e.datasets[name]; ok {
		return attach(ds)
	}
	if _, gone := e.releasedNames[name]; gone {
		return nil, fmt.Errorf("%w: dataset %q was handed off from this engine", ErrReleased, name)
	}
	if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
		return nil, fmt.Errorf("engine: dataset limit of %d reached", e.maxDatasets)
	}
	if err := e.admitLocked(tableBytes(shell.params.U), nil); err != nil {
		return nil, fmt.Errorf("engine: cannot admit dataset %q: %w", name, err)
	}
	// admitLocked may have released e.mu while waiting out an in-flight
	// transition: re-check the registry and the cap before creating.
	if ds, ok := e.datasets[name]; ok {
		return attach(ds)
	}
	if _, gone := e.releasedNames[name]; gone {
		return nil, fmt.Errorf("%w: dataset %q was handed off from this engine", ErrReleased, name)
	}
	if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
		return nil, fmt.Errorf("engine: dataset limit of %d reached", e.maxDatasets)
	}
	ds := shell
	ds.head = &tableState{
		counts: make([]int64, ds.params.U),
		elems:  make([]field.Elem, ds.params.U),
	}
	ds.res = resResident
	ds.name = name
	ds.eng = e
	e.resident += tableBytes(ds.params.U)
	e.touchLocked(ds)
	e.datasets[name] = ds
	return ds, nil
}

// NewPartialProver constructs the slice-owner prover session for one
// query over this snapshot: a core.PartialProver whose opening reports
// the snapshot's dataset version and whose messages are this slice's
// exact partials of the single-engine transcript. On a whole-universe
// dataset it returns the session for the one slice covering the whole
// padded table — the S=1 degenerate split an aggregation-overhead
// benchmark compares against. Kinds outside the seam (everything but
// SELF-JOIN SIZE, Fk, and RANGE-SUM) fail with ErrNotSplittable.
func (s *Snapshot) NewPartialProver(kind QueryKind, params QueryParams) (core.ProverSession, error) {
	d := s.ds
	lo, hi := d.sliceLo, d.sliceHi
	if hi == 0 {
		lo, hi = 0, d.params.U
	}
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(params.K)
		}
		proto, err := core.NewFk(d.f, d.origU, k)
		if err != nil {
			return nil, err
		}
		proto.Workers = d.workers
		return proto.NewPartialProverFromTable(s.st.elems, lo, hi, s.st.version)
	case QueryRangeSum:
		proto, err := core.NewRangeSum(d.f, d.origU)
		if err != nil {
			return nil, err
		}
		proto.Workers = d.workers
		return proto.NewPartialProverFromTable(s.st.elems, lo, hi, s.st.version, params.A, params.B)
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrNotSplittable, kind)
	}
}

package engine_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// TestConcurrentOpenSameName: racing Opens of one name must converge on
// a single dataset (admission can release the engine lock while waiting
// out transitions, so Open re-checks the registry afterwards) with the
// budget charged exactly once.
func TestConcurrentOpenSameName(t *testing.T) {
	const racers = 8
	e := engine.New(f61, 0)
	if err := e.SetDataDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	e.SetBudget(2 * oneDataset)
	// A resident decoy keeps admission busy evicting while the racers run.
	if _, err := e.Open("decoy", evictU); err != nil {
		t.Fatal(err)
	}
	got := make([]*engine.Dataset, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds, err := e.Open("same", evictU)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = ds
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if got[i] != got[0] {
			t.Fatalf("racer %d got a different dataset for the same name", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var want int64
		for _, name := range []string{"decoy", "same"} {
			if ds, ok := e.Get(name); ok && ds.Resident() {
				want += oneDataset
			}
		}
		if e.ResidentBytes() == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget drifted after racing opens: ResidentBytes=%d, Σ resident=%d", e.ResidentBytes(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrossDatasetContention hammers a budgeted durable engine with
// four datasets sharing a two-dataset budget — every ingest or snapshot
// can force an eviction of one dataset overlapped with a rehydration of
// another, which is exactly the transition concurrency the per-dataset
// residency latch exists for. Meaningful mostly under -race. It then
// asserts the two governance invariants:
//
//	(a) no budget-accounting drift: once transitions settle,
//	    ResidentBytes equals the Σ of the resident datasets' tables
//	    (and respects the budget);
//	(b) bit-identical transcripts: for every query kind (spread across
//	    the datasets) and worker count, a prover built from the
//	    contended, evicted-and-rehydrated dataset converses identically
//	    to one from a standalone dataset fed the same updates serially.
func TestCrossDatasetContention(t *testing.T) {
	const (
		nDatasets  = 4
		writers    = 2
		iterations = 10
		batch      = 48
	)
	for _, workers := range []int{0, 2, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := engine.New(f61, workers)
			if err := e.SetDataDir(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			e.SetBudget(2 * oneDataset) // room for half the fleet
			if err := e.StartCheckpointer(time.Millisecond); err != nil {
				t.Fatal(err)
			}

			seed := func(di, w int) uint64 { return uint64(9000 + 100*di + w) }
			var dss [nDatasets]*engine.Dataset
			for i := range dss {
				ds, err := e.Open(fmt.Sprintf("d%d", i), evictU)
				if err != nil {
					t.Fatal(err)
				}
				dss[i] = ds
			}

			var wg sync.WaitGroup
			for di, ds := range dss {
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(ds *engine.Dataset, seed uint64) {
						defer wg.Done()
						rng := field.NewSplitMix64(seed)
						for i := 0; i < iterations; i++ {
							if err := ds.Ingest(stream.UnitIncrements(evictU, batch, rng)); err != nil {
								t.Error(err)
								return
							}
						}
					}(ds, seed(di, w))
				}
				wg.Add(1)
				go func(ds *engine.Dataset) {
					defer wg.Done()
					for i := 0; i < iterations; i++ {
						snap, err := ds.SnapshotErr()
						if err != nil {
							t.Error(err)
							return
						}
						var total int64
						for j, c := range snap.Counts() {
							total += c
							if f61.FromInt64(c) != snap.Elems()[j] {
								t.Error("snapshot tore across a transition: counts and elems disagree")
								return
							}
						}
						if total != snap.Total() {
							t.Errorf("snapshot tore: Σcounts=%d but Total=%d", total, snap.Total())
							return
						}
					}
				}(ds)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// (a) Accounting returns to Σ of resident tables once the
			// in-flight transitions settle (they complete on background
			// goroutines, so poll briefly).
			deadline := time.Now().Add(10 * time.Second)
			for {
				var want int64
				for _, ds := range dss {
					if ds.Resident() {
						want += oneDataset
					}
				}
				got := e.ResidentBytes()
				if got == want {
					if got > 2*oneDataset {
						t.Fatalf("resident bytes %d exceed the budget %d", got, 2*oneDataset)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("budget accounting drifted: ResidentBytes=%d, Σ resident tables=%d", got, want)
				}
				time.Sleep(time.Millisecond)
			}

			// (b) Transcript equality against an uncontended baseline, the
			// twelve kinds spread across the four datasets.
			kinds := allKinds()
			for di, ds := range dss {
				var ups []stream.Update
				for w := 0; w < writers; w++ {
					rng := field.NewSplitMix64(seed(di, w))
					ups = append(ups, stream.UnitIncrements(evictU, iterations*batch, rng)...)
				}
				base, err := engine.NewDataset(f61, evictU, workers)
				if err != nil {
					t.Fatal(err)
				}
				if err := base.Ingest(ups); err != nil {
					t.Fatal(err)
				}
				baseSnap := base.Snapshot()
				snap, err := ds.SnapshotErr()
				if err != nil {
					t.Fatal(err)
				}
				if snap.Updates() != uint64(len(ups)) || snap.Total() != baseSnap.Total() {
					t.Fatalf("dataset %d drifted: %d updates Σ%d, want %d Σ%d",
						di, snap.Updates(), snap.Total(), len(ups), baseSnap.Total())
				}
				for k := di; k < len(kinds); k += nDatasets {
					c := kinds[k]
					tseed := uint64(12_000 + uint64(c.kind))
					pBase, err := baseSnap.NewProver(c.kind, c.params)
					if err != nil {
						t.Fatal(err)
					}
					want := runTranscript(t, evictU, c.kind, c.params, ups, tseed, pBase)
					pCont, err := snap.NewProver(c.kind, c.params)
					if err != nil {
						t.Fatal(err)
					}
					got := runTranscript(t, evictU, c.kind, c.params, ups, tseed, pCont)
					if err := sameMsgs(want, got); err != nil {
						t.Errorf("dataset %d kind=%d workers=%d: contended transcript differs: %v", di, c.kind, workers, err)
					}
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/store"
	"repro/internal/stream"
)

// TestHandoffTranscriptEquality is the checkpoint-handoff contract: for
// every query kind and worker count, a dataset released from one engine
// (Release), its checkpoint file moved to another engine's data dir,
// and adopted there (Adopt) answers with transcripts — and Fiat–Shamir
// proof bytes — bit-identical to the pre-move originals. This is the
// guarantee the shard router's rebalance rests on.
func TestHandoffTranscriptEquality(t *testing.T) {
	const u = 500
	const name = "move-me"
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(4100))

	for _, workers := range []int{0, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srcDir, dstDir := t.TempDir(), t.TempDir()

			src := engine.New(f61, workers)
			if err := src.SetDataDir(srcDir); err != nil {
				t.Fatal(err)
			}
			ds, err := src.Open(name, u)
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.Ingest(ups); err != nil {
				t.Fatal(err)
			}

			// Pre-move baselines: one recorded conversation and one encoded
			// Fiat–Shamir proof per kind.
			kinds := allKinds()
			before := make([][]core.Msg, len(kinds))
			beforeProof := make([][]byte, len(kinds))
			snap := ds.Snapshot()
			for k, c := range kinds {
				msgs, err := converseRecorded(snap, u, c.kind, c.params, uint64(41_000+k), ups)
				if err != nil {
					t.Fatalf("kind %d baseline: %v", c.kind, err)
				}
				before[k] = msgs
				pf, err := snap.GenerateProof(c.kind, c.params)
				if err != nil {
					t.Fatalf("kind %d baseline proof: %v", c.kind, err)
				}
				beforeProof[k] = pf.Encode()
			}

			// Release: final checkpoint on disk, handle poisoned.
			n, err := src.Release(name)
			if err != nil {
				t.Fatal(err)
			}
			if n != uint64(len(ups)) {
				t.Fatalf("Release reported %d updates, want %d", n, len(ups))
			}
			if err := ds.Ingest(ups[:1]); !errors.Is(err, engine.ErrReleased) {
				t.Fatalf("ingest through a released handle: err = %v, want ErrReleased", err)
			}
			if _, err := ds.SnapshotErr(); !errors.Is(err, engine.ErrReleased) {
				t.Fatalf("snapshot of a released handle: err = %v, want ErrReleased", err)
			}
			if _, ok := src.Get(name); ok {
				t.Fatalf("released dataset still registered on the source")
			}

			// The move: exactly what the router does between the two shards.
			file := store.DatasetFile(name)
			if err := os.Rename(filepath.Join(srcDir, file), filepath.Join(dstDir, file)); err != nil {
				t.Fatal(err)
			}

			dst := engine.New(f61, workers)
			if err := dst.SetDataDir(dstDir); err != nil {
				t.Fatal(err)
			}
			m, err := dst.Adopt(name)
			if err != nil {
				t.Fatal(err)
			}
			if m != n {
				t.Fatalf("Adopt reported %d updates, Release reported %d", m, n)
			}

			ds2, ok := dst.Get(name)
			if !ok {
				t.Fatal("adopted dataset not registered on the target")
			}
			snap2 := ds2.Snapshot()
			if snap2.Version() != snap.Version() {
				t.Fatalf("version changed across the move: %d vs %d", snap2.Version(), snap.Version())
			}
			for k, c := range kinds {
				msgs, err := converseRecorded(snap2, u, c.kind, c.params, uint64(41_000+k), ups)
				if err != nil {
					t.Fatalf("kind %d after move: %v", c.kind, err)
				}
				if err := sameMsgs(before[k], msgs); err != nil {
					t.Errorf("kind %d: transcript differs across handoff: %v", c.kind, err)
				}
				pf, err := snap2.GenerateProof(c.kind, c.params)
				if err != nil {
					t.Fatalf("kind %d proof after move: %v", c.kind, err)
				}
				if !bytes.Equal(beforeProof[k], pf.Encode()) {
					t.Errorf("kind %d: Fiat–Shamir proof bytes differ across handoff", c.kind)
				}
			}
		})
	}
}

// converseRecorded runs one interactive conversation from a snapshot
// prover against a fresh verifier and returns the prover's recorded
// transcript.
func converseRecorded(snap *engine.Snapshot, u uint64, kind engine.QueryKind, params engine.QueryParams, seed uint64, ups []stream.Update) ([]core.Msg, error) {
	v, obs, err := newVerifier(f61, u, kind, params, field.NewSplitMix64(seed))
	if err != nil {
		return nil, err
	}
	for _, up := range ups {
		if err := obs(up); err != nil {
			return nil, err
		}
	}
	p, err := snap.NewProver(kind, params)
	if err != nil {
		return nil, err
	}
	rec := &recordingProver{inner: p}
	if _, err := core.Run(rec, v); err != nil {
		return nil, err
	}
	return rec.msgs, nil
}

// TestReleaseKeepsCheckpointDropDeletes pins the file-lifecycle split
// between the two removal paths: Drop deletes the checkpoint (the
// dataset is gone), Release leaves it (the dataset is moving).
func TestReleaseKeepsCheckpointDropDeletes(t *testing.T) {
	const u = 64
	dir := t.TempDir()
	eng := engine.New(f61, 0)
	if err := eng.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"kept", "gone"} {
		ds, err := eng.Open(name, u)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Ingest(stream.UnitIncrements(u, 10, field.NewSplitMix64(7))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Release("kept"); err != nil {
		t.Fatal(err)
	}
	eng.Drop("gone")
	if _, err := os.Stat(filepath.Join(dir, store.DatasetFile("kept"))); err != nil {
		t.Errorf("Release must keep the checkpoint for the adopter: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, store.DatasetFile("gone"))); !os.IsNotExist(err) {
		t.Errorf("Drop must delete the checkpoint, stat err = %v", err)
	}
}

// TestAdoptRefusals: adopting over a live registration or without a
// checkpoint file fails loudly — two owners of one dataset must be
// impossible to create by accident.
func TestAdoptRefusals(t *testing.T) {
	const u = 64
	dir := t.TempDir()
	eng := engine.New(f61, 0)
	if err := eng.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := eng.Open("live", u)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(u, 5, field.NewSplitMix64(9))); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Adopt("live"); err == nil {
		t.Fatal("Adopt over a live registration must fail")
	}
	if _, err := eng.Adopt("no-such-checkpoint"); err == nil {
		t.Fatal("Adopt without a checkpoint file must fail")
	}
	if _, err := eng.Release("no-such-dataset"); err == nil {
		t.Fatal("Release of an unknown dataset must fail")
	}
}

// TestReleaseOfEvictedDataset: a dataset released while evicted needs
// no save (its tables were freed only after a durable checkpoint); the
// handoff must still carry every update.
func TestReleaseOfEvictedDataset(t *testing.T) {
	const u = 1 << 10
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := engine.New(f61, 0)
	if err := src.SetDataDir(srcDir); err != nil {
		t.Fatal(err)
	}
	ds, err := src.Open("cold", u)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(11))
	if err := ds.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	// Evict it by opening a second dataset under a budget that fits one.
	cost, err := engine.TableCost(u)
	if err != nil {
		t.Fatal(err)
	}
	src.SetBudget(cost + cost/2)
	if _, err := src.Open("warm", u); err != nil {
		t.Fatal(err)
	}
	if ds.Resident() {
		t.Fatal("test setup: dataset was not evicted")
	}
	n, err := src.Release("cold")
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(ups)) {
		t.Fatalf("Release of evicted dataset reported %d updates, want %d", n, len(ups))
	}
	file := store.DatasetFile("cold")
	if err := os.Rename(filepath.Join(srcDir, file), filepath.Join(dstDir, file)); err != nil {
		t.Fatal(err)
	}
	dst := engine.New(f61, 0)
	if err := dst.SetDataDir(dstDir); err != nil {
		t.Fatal(err)
	}
	if m, err := dst.Adopt("cold"); err != nil || m != n {
		t.Fatalf("Adopt = (%d, %v), want (%d, nil)", m, err, n)
	}
}

// TestReleasedNameTombstone: after Release, Open of the same name must
// fail with ErrReleased instead of silently creating a fresh empty
// dataset — the guard against a client whose router still routes to the
// source during a cross-process rebalance. Adopt clears the tombstone
// (the name came back); Drop is the operator's escape hatch.
func TestReleasedNameTombstone(t *testing.T) {
	const u = 64
	dir := t.TempDir()
	eng := engine.New(f61, 0)
	if err := eng.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := eng.Open("moved", u)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(u, 10, field.NewSplitMix64(11))); err != nil {
		t.Fatal(err)
	}
	n, err := eng.Release("moved")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Open("moved", u); !errors.Is(err, engine.ErrReleased) {
		t.Fatalf("Open of a released name = %v, want ErrReleased", err)
	}
	// Adopt brings the name back (checkpoint is still in this data dir)
	// and clears the tombstone: Open attaches again.
	if m, err := eng.Adopt("moved"); err != nil || m != n {
		t.Fatalf("Adopt = (%d, %v), want (%d, nil)", m, err, n)
	}
	ds2, err := eng.Open("moved", u)
	if err != nil {
		t.Fatalf("Open after Adopt = %v, want nil", err)
	}
	if got := ds2.Updates(); got != n {
		t.Fatalf("adopted dataset holds %d updates, want %d", got, n)
	}
	// Release again, then Drop the tombstoned name: the operator chose
	// to forget it, so a fresh Open may recreate it empty.
	if _, err := eng.Release("moved"); err != nil {
		t.Fatal(err)
	}
	eng.Drop("moved")
	ds3, err := eng.Open("moved", u)
	if err != nil {
		t.Fatalf("Open after Drop of tombstoned name = %v, want nil", err)
	}
	if got := ds3.Updates(); got != 0 {
		t.Fatalf("recreated dataset holds %d updates, want 0", got)
	}
}

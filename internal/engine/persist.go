// Resource governance and durability: the Σ-byte memory budget with LRU
// eviction to disk, checkpoint persistence, and crash recovery. See the
// package comment in engine.go for the model.
//
// # Locking contract
//
// Lock order: e.mu before d.mu before d.saveMu; never the reverse.
// Holding any d.mu while acquiring e.mu is forbidden (touch releases
// d.mu first; rehydrate claims its transition and drops d.mu before
// admission).
//
// Residency transitions *begin* only with the engine lock held —
// beginEvictLocked and the claim step of rehydrate — so admission
// accounting (e.resident, e.transitions) can never race a transition's
// start. The I/O that completes a transition (checkpoint save,
// store.Load, the O(u) field-image rebuild) runs with NO lock held:
// each dataset carries a residency latch (Dataset.res, a four-state
// machine, plus resCond) and only goroutines needing *that* dataset's
// tables wait on it. k transitions of k distinct datasets therefore
// cost ~1× the I/O wall-clock, not k× — the engine lock is held only
// for the O(1) bookkeeping at each end.
//
// Accounting invariants (all under e.mu):
//
//   - e.resident = Σ tableBytes over datasets in {resident,
//     rehydrating} + external reservations (AdmitBytes). An evicting
//     dataset's bytes are released when its eviction *begins*; its
//     tables are freed (or, on a save failure, re-charged) when it
//     completes.
//   - A dataset's tables are freed only after its checkpoint is
//     durably on disk (invariant 7 in DESIGN.md): finishEvict frees
//     head only on a successful save and returns the dataset to
//     residency otherwise.
//   - Admission (admitLocked) begins LRU evictions until the
//     reservation fits; when every candidate is already in transition
//     it waits on admitCond (a finishing rehydration becomes the next
//     victim, a failed eviction returns its bytes) and fails with
//     ErrBudget only when nothing in flight can ever make room.
//
// Persist seals the head (copy-on-write) and writes outside the locks,
// so background checkpointing never blocks serving; per-dataset saveMu
// plus the diskN watermark keep a slow writer of an older sealed state
// from clobbering a newer checkpoint.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/parallel"
	"repro/internal/store"
)

// ErrBudget reports that admitting a dataset's tables would exceed the
// engine's memory budget and eviction could not make room. The wire
// layer maps it onto its budget-exhausted error frame so clients can
// distinguish "server full" from a protocol failure.
var ErrBudget = errors.New("engine: memory budget exceeded")

// ErrPartialRecovery wraps the per-file failures of a Recover scan that
// still registered every healthy dataset. Callers that want the skip
// semantics (a bit-rotted file must not take the whole server down)
// test for it with errors.Is and continue; anything else from Recover
// is a scan-level failure.
var ErrPartialRecovery = errors.New("engine: some checkpoints were not recovered")

// ErrCheckpointerRunning reports a StartCheckpointer on an engine whose
// background checkpointer is already running — harmless when two
// listeners share one engine and both ask for the same policy.
var ErrCheckpointerRunning = errors.New("engine: checkpointer already running")

// ckptExt is the checkpoint file suffix in the data dir.
const ckptExt = store.CkptExt

// maxRetainedBgErrs bounds how many background persistence failures are
// kept in the error chain surfaced by Close. A server on a persistently
// failing disk can accumulate thousands of near-identical failures
// between restarts; beyond the cap they are counted, not retained, so
// the chain cannot grow memory without bound.
const maxRetainedBgErrs = 32

// recordBgErrLocked retains a background persistence failure for Close
// to surface. Distinct failures accumulate with errors.Join (an early
// failure is never hidden by a later one); past maxRetainedBgErrs only
// the count grows. Caller holds e.mu.
func (e *Engine) recordBgErrLocked(err error) {
	if e.ckptErrN < maxRetainedBgErrs {
		e.ckptErr = errors.Join(e.ckptErr, err)
	}
	e.ckptErrN++
}

// fileForName maps a dataset name to its filesystem-safe checkpoint
// file name; shared with the shard router via store.DatasetFile.
func fileForName(name string) string { return store.DatasetFile(name) }

// nameFromFile inverts fileForName.
func nameFromFile(file string) (string, error) { return store.DatasetName(file) }

// SetBudget caps the aggregate bytes of resident dataset tables (counts
// plus field image: 16 bytes per padded universe entry per dataset).
// Zero or negative removes the cap. The budget is enforced at admission
// time — Open of a new dataset, rehydration of an evicted one, and
// AdmitBytes reservations — by evicting least-recently-used datasets to
// the data dir; without a data dir eviction is impossible and admission
// simply fails at the cap. Already-resident datasets are not evicted by
// SetBudget itself.
func (e *Engine) SetBudget(bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.budget = bytes
	e.admitCond.Broadcast()
}

// ResidentBytes reports the bytes of dataset tables currently resident
// or reserved — the quantity SetBudget caps. It includes datasets mid-
// rehydration (their reservation is made up front) and external
// AdmitBytes reservations; a dataset mid-eviction is already excluded.
func (e *Engine) ResidentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resident
}

// TableCost returns the resident byte cost of a dataset over a universe
// of size ≥ u: 16 bytes per entry of the padded (power-of-two) table.
// The wire layer uses it to charge v1 private datasets against the
// engine budget via AdmitBytes.
func TableCost(u uint64) (int64, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return 0, err
	}
	return tableBytes(params.U), nil
}

// AdmitBytes reserves n bytes of the engine's memory budget for state
// the caller manages itself (the wire layer's v1 private datasets, which
// live outside the registry). The reservation is subject to the same
// admission control as a dataset: LRU named datasets are evicted to make
// room, and ErrBudget is returned when eviction cannot. The reservation
// itself is never evictable — callers must pair every successful
// AdmitBytes with a ReleaseBytes.
func (e *Engine) AdmitBytes(n int64) error {
	if n < 0 {
		return fmt.Errorf("engine: cannot admit %d bytes", n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.admitLocked(n, nil); err != nil {
		return err
	}
	e.resident += n
	return nil
}

// ReleaseBytes returns a reservation made with AdmitBytes.
func (e *Engine) ReleaseBytes(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resident -= n
	e.admitCond.Broadcast()
}

// Resident reports whether the dataset's tables are usable from memory
// right now — false while evicted and during either transition.
// Standalone datasets are always resident; an engine-managed dataset may
// be evicted between uses and rehydrates transparently.
func (d *Dataset) Resident() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.res == resResident
}

// SetDataDir names the directory datasets checkpoint to (created if
// missing). It enables eviction, Persist, StartCheckpointer, and
// Recover.
func (e *Engine) SetDataDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dataDir = dir
	return nil
}

// touchLocked stamps the dataset most-recently-used. Caller holds e.mu.
func (e *Engine) touchLocked(d *Dataset) {
	e.clock++
	d.lastUse = e.clock
}

// admitLocked makes room for need bytes of tables, beginning LRU
// evictions (which complete asynchronously, see beginEvictLocked) until
// the reservation fits the budget. When every candidate is already in
// transition it waits on admitCond — a finishing rehydration becomes
// the next victim, a failed eviction returns its bytes — and fails with
// ErrBudget only when nothing in flight can make room. Caller holds
// e.mu and no dataset lock; exclude (which may be nil) is never chosen
// as a victim. A failure is always an ErrBudget.
func (e *Engine) admitLocked(need int64, exclude *Dataset) error {
	if e.budget <= 0 {
		return nil
	}
	if need > e.budget {
		return fmt.Errorf("%w: tables of %d bytes exceed the budget of %d", ErrBudget, need, e.budget)
	}
	for e.resident+need > e.budget {
		if e.dataDir == "" {
			return fmt.Errorf("%w: %d bytes resident, %d more needed, and no data dir is configured for eviction", ErrBudget, e.resident, need)
		}
		if victim := e.lruVictimLocked(exclude); victim != nil {
			e.beginEvictLocked(victim)
			continue
		}
		if e.transitions == 0 {
			return fmt.Errorf("%w: %d bytes resident, %d more needed, and nothing is left to evict", ErrBudget, e.resident, need)
		}
		e.admitCond.Wait()
	}
	return nil
}

// lruVictimLocked returns the least-recently-used resident dataset other
// than exclude, or nil if none. Datasets mid-transition are not
// candidates. Caller holds e.mu.
func (e *Engine) lruVictimLocked(exclude *Dataset) *Dataset {
	var victim *Dataset
	for _, d := range e.datasets {
		if d == exclude {
			continue
		}
		d.mu.Lock()
		resident := d.res == resResident
		d.mu.Unlock()
		if !resident {
			continue
		}
		if victim == nil || d.lastUse < victim.lastUse {
			victim = d
		}
	}
	return victim
}

// saveState checkpoints st for this dataset unless an equal-or-newer
// checkpoint is already on disk. Writers serialize on saveMu and disk
// state only moves forward, so a slow save of an older sealed state
// (e.g. a background Persist racing an eviction) can never regress the
// file. The caller must guarantee st is not concurrently mutated (hold
// d.mu, or pass a sealed state).
func (d *Dataset) saveState(dir string, st *tableState) error {
	d.saveMu.Lock()
	defer d.saveMu.Unlock()
	if d.dropped {
		return nil // Drop deleted the file; writing would resurrect the dataset
	}
	if d.diskHas && st.n <= d.diskN {
		return nil
	}
	if err := store.Save(filepath.Join(dir, fileForName(d.name)), d.checkpointOf(st)); err != nil {
		return err
	}
	d.diskN = st.n
	d.diskHas = true
	return nil
}

// beginEvictLocked starts evicting a resident dataset: it flips the
// dataset's latch to evicting, seals the head, and releases the bytes
// from the accounting immediately — the admitting goroutine proceeds
// without waiting for disk. The checkpoint save and the table free
// complete on a background goroutine (finishEvict), outside every lock.
// Caller holds e.mu; the victim must be resident and is not the
// caller's own dataset.
func (e *Engine) beginEvictLocked(d *Dataset) {
	d.mu.Lock()
	st := d.head
	st.sealed = true // outstanding snapshots may still share these tables
	d.res = resEvicting
	d.mu.Unlock()
	e.resident -= tableBytes(d.params.U)
	e.transitions++
	go e.finishEvict(d, st, e.dataDir)
}

// finishEvict completes an eviction begun by beginEvictLocked: it
// checkpoints the sealed state (a no-op when an equal-or-newer
// checkpoint is already on disk) and only then frees the tables —
// invariant 7: tables are never freed before their contents are
// durable. On a save failure the dataset returns to residency, its
// bytes are re-charged (transiently overshooting the budget rather
// than losing data), and the failure is retained for Close to surface.
func (e *Engine) finishEvict(d *Dataset, st *tableState, dir string) {
	err := d.saveState(dir, st)
	e.mu.Lock()
	d.mu.Lock()
	if err != nil {
		d.res = resResident
		e.resident += tableBytes(d.params.U)
		e.recordBgErrLocked(fmt.Errorf("engine: evicting %q: %w", d.name, err))
	} else {
		d.head = nil
		d.res = resEvicted
	}
	e.transitions--
	d.resCond.Broadcast()
	e.admitCond.Broadcast()
	d.mu.Unlock()
	e.mu.Unlock()
}

// rehydrate loads an evicted dataset's checkpoint back into memory,
// subject to admission control. The transition is claimed (and its
// bytes reserved) under the engine lock, but the load and the O(u)
// field-image rebuild run with no lock held, so concurrent
// rehydrations of distinct datasets overlap. No-op if the dataset is
// already resident or mid-transition (the withState loop re-checks).
func (e *Engine) rehydrate(d *Dataset) error {
	e.mu.Lock()
	d.mu.Lock()
	if d.eng != e || d.res != resEvicted {
		// Raced with another rehydration, an eviction still settling, or
		// Drop; the caller re-evaluates through its latch wait.
		d.mu.Unlock()
		e.mu.Unlock()
		return nil
	}
	if e.dataDir == "" {
		d.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("engine: dataset %q is evicted but the engine has no data dir", d.name)
	}
	// Claim the transition before admission: a claimed dataset cannot be
	// claimed twice, and dropping d.mu here means admission (which may
	// wait) holds no dataset lock.
	d.res = resRehydrating
	d.mu.Unlock()
	need := tableBytes(d.params.U)
	if err := e.admitLocked(need, d); err != nil {
		d.mu.Lock()
		d.res = resEvicted
		d.resCond.Broadcast()
		d.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("engine: cannot rehydrate dataset %q: %w", d.name, err)
	}
	e.resident += need
	e.transitions++
	dir := e.dataDir
	e.mu.Unlock()

	// I/O and rebuild, outside every lock.
	ckpt, err := store.Load(filepath.Join(dir, fileForName(d.name)), e.f.Modulus())
	var st *tableState
	if err == nil {
		st, err = d.stateFromCheckpoint(ckpt)
	}
	if err == nil {
		d.saveMu.Lock()
		if !d.diskHas || st.n > d.diskN {
			d.diskN = st.n
			d.diskHas = true
		}
		d.saveMu.Unlock()
	}

	e.mu.Lock()
	d.mu.Lock()
	if err != nil {
		e.resident -= need
		d.res = resEvicted
	} else {
		d.head = st
		d.nMeta = st.n
		d.verMeta = st.version
		d.res = resResident
		e.touchLocked(d)
	}
	e.transitions--
	d.resCond.Broadcast()
	e.admitCond.Broadcast()
	d.mu.Unlock()
	e.mu.Unlock()
	if err != nil {
		return fmt.Errorf("engine: rehydrating dataset %q: %w", d.name, err)
	}
	return nil
}

// checkpointOf packages a sealed-or-stable table state for the codec.
// Caller must guarantee st is not concurrently mutated.
func (d *Dataset) checkpointOf(st *tableState) *store.Checkpoint {
	return &store.Checkpoint{
		Universe: d.origU,
		Modulus:  d.f.Modulus(),
		Total:    st.total,
		Updates:  st.n,
		Version:  st.version,
		SliceLo:  d.sliceLo,
		SliceHi:  d.sliceHi,
		Counts:   st.counts,
	}
}

// checkCheckpoint verifies a structurally valid checkpoint actually
// belongs to this dataset's geometry.
func (d *Dataset) checkCheckpoint(ckpt *store.Checkpoint) error {
	if ckpt.Universe != d.origU {
		return fmt.Errorf("checkpoint universe %d, dataset has %d", ckpt.Universe, d.origU)
	}
	if ckpt.SliceLo != d.sliceLo || ckpt.SliceHi != d.sliceHi {
		return fmt.Errorf("checkpoint slice [%d,%d), dataset has [%d,%d)", ckpt.SliceLo, ckpt.SliceHi, d.sliceLo, d.sliceHi)
	}
	if uint64(len(ckpt.Counts)) != d.params.U {
		return fmt.Errorf("checkpoint table length %d, dataset pads to %d", len(ckpt.Counts), d.params.U)
	}
	return nil
}

// shellForCheckpoint builds the table-less dataset shell matching a
// checkpoint's geometry: a slice shell when the checkpoint carries
// slice bounds, a whole-universe shell otherwise.
func shellForCheckpoint(f field.Field, ckpt *store.Checkpoint, workers int) (*Dataset, error) {
	if ckpt.Slice() {
		return newSliceShell(f, ckpt.Universe, ckpt.SliceLo, ckpt.SliceHi, workers)
	}
	return newDatasetShell(f, ckpt.Universe, workers)
}

// stateFromCheckpoint rebuilds live tables from a checkpoint: the counts
// are taken as-is, the field image is recomputed (it is a deterministic
// function of the counts, so an evict/rehydrate cycle is bit-exact).
func (d *Dataset) stateFromCheckpoint(ckpt *store.Checkpoint) (*tableState, error) {
	if err := d.checkCheckpoint(ckpt); err != nil {
		return nil, err
	}
	st := &tableState{
		counts:  ckpt.Counts,
		elems:   make([]field.Elem, len(ckpt.Counts)),
		total:   ckpt.Total,
		n:       ckpt.Updates,
		version: ckpt.Version,
	}
	f := d.f
	rebuild := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.elems[i] = f.FromInt64(st.counts[i])
		}
	}
	if nw := parallel.Workers(d.workers); nw > 1 && len(st.counts) >= minShardBatch {
		parallel.ForGrain(nw, len(st.counts), 1<<12, func(_, lo, hi int) { rebuild(lo, hi) })
	} else {
		rebuild(0, len(st.counts))
	}
	return st, nil
}

// quiesceLocked waits until no residency transition is in flight, so a
// caller can rely on every eviction save having hit the disk. Caller
// holds e.mu (the wait releases and reacquires it).
func (e *Engine) quiesceLocked() {
	for e.transitions > 0 {
		e.admitCond.Wait()
	}
}

// Persist checkpoints every dirty dataset to the data dir and returns
// the first errors encountered (joined). It first waits out in-flight
// transitions, so "Persist returned nil" means every batch ingested
// before the call is durably on disk — including ones inside an
// eviction that was still settling. The head is sealed before the
// write, so saving proceeds outside the locks while ingestion continues
// against a copy-on-write clone; the crash-loss window of a server that
// persists every t is therefore at most t of ingestion.
func (e *Engine) Persist() error {
	var errs []error
	for {
		e.mu.Lock()
		e.quiesceLocked()
		dir := e.dataDir
		all := make([]*Dataset, 0, len(e.datasets))
		for _, d := range e.datasets {
			all = append(all, d)
		}
		e.mu.Unlock()
		if dir == "" {
			return fmt.Errorf("engine: Persist needs a data dir (SetDataDir)")
		}
		sawEvicting := false
		for _, d := range all {
			// Peek at the disk watermark to skip sealing clean datasets (the
			// peek is advisory: saveState re-checks under its own lock).
			d.saveMu.Lock()
			diskN, diskHas := d.diskN, d.diskHas
			d.saveMu.Unlock()
			d.mu.Lock()
			if d.res == resEvicting {
				// An eviction began after our quiesce. Its save usually
				// makes the dataset durable, but it can fail (returning the
				// dataset to residency, dirty) — re-scan after it settles
				// rather than trusting it, so a nil from Persist really
				// means everything ingested before the call is on disk.
				sawEvicting = true
				d.mu.Unlock()
				continue
			}
			st := d.head
			if d.res != resResident || st == nil || (diskHas && st.n == diskN) {
				// Evicted/rehydrating datasets match their disk state, and
				// clean resident ones are on disk already.
				d.mu.Unlock()
				continue
			}
			st.sealed = true
			d.mu.Unlock()
			if err := d.saveState(dir, st); err != nil {
				errs = append(errs, fmt.Errorf("dataset %q: %w", d.name, err))
			}
		}
		if !sawEvicting {
			return errors.Join(errs...)
		}
	}
}

// Recover scans the data dir and registers every checkpointed dataset,
// validating each file fully (checksum, version, field). Datasets are
// loaded resident until the memory budget fills, then registered
// evicted — they rehydrate on first use. Names already registered are
// skipped, so Recover is idempotent and safe on a shared engine. It
// returns how many datasets were recovered; per-file failures never
// abort the scan — they are joined under ErrPartialRecovery so callers
// can warn and keep serving the healthy datasets.
func (e *Engine) Recover() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dataDir == "" {
		return 0, fmt.Errorf("engine: Recover needs a data dir (SetDataDir)")
	}
	ents, err := os.ReadDir(e.dataDir)
	if err != nil {
		return 0, err
	}
	n := 0
	var errs []error
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ckptExt) {
			continue
		}
		name, err := nameFromFile(ent.Name())
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if _, ok := e.datasets[name]; ok {
			continue
		}
		if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
			errs = append(errs, fmt.Errorf("engine: dataset limit of %d reached; %q not recovered", e.maxDatasets, name))
			continue
		}
		ckpt, err := store.Load(filepath.Join(e.dataDir, ent.Name()), e.f.Modulus())
		if err != nil {
			errs = append(errs, err)
			continue
		}
		// A shell only: tables are rebuilt below iff the dataset will
		// actually be resident — an over-budget fleet restarts without
		// paying O(u) per dataset it is not going to keep in memory.
		ds, err := shellForCheckpoint(e.f, ckpt, e.workers)
		if err != nil {
			errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
			continue
		}
		ds.name = name
		ds.eng = e
		if err := ds.checkCheckpoint(ckpt); err != nil {
			errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
			continue
		}
		size := tableBytes(ds.params.U)
		if e.budget <= 0 || e.resident+size <= e.budget {
			st, err := ds.stateFromCheckpoint(ckpt)
			if err != nil {
				errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
				continue
			}
			ds.head = st
			ds.res = resResident
			e.resident += size
		} // else: stays evicted (head nil) until first use
		ds.nMeta = ckpt.Updates
		ds.verMeta = ckpt.Version
		ds.diskN = ckpt.Updates
		ds.diskHas = true
		e.touchLocked(ds)
		e.datasets[name] = ds
		n++
	}
	if len(errs) > 0 {
		return n, fmt.Errorf("%w: %w", ErrPartialRecovery, errors.Join(errs...))
	}
	return n, nil
}

// removeCheckpointLocked deletes the dataset's checkpoint file, if any.
// Caller holds e.mu.
func (e *Engine) removeCheckpointLocked(name string) {
	if e.dataDir != "" {
		_ = os.Remove(filepath.Join(e.dataDir, fileForName(name)))
	}
}

// StartCheckpointer persists dirty datasets every interval on a
// background goroutine until Close, bounding crash loss to one interval
// of ingestion. Every background failure is retained (accumulated with
// errors.Join, so earlier distinct failures never vanish behind the
// latest one) and surfaced by Close.
func (e *Engine) StartCheckpointer(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("engine: checkpoint interval must be positive, got %v", interval)
	}
	e.mu.Lock()
	if e.dataDir == "" {
		e.mu.Unlock()
		return fmt.Errorf("engine: StartCheckpointer needs a data dir (SetDataDir)")
	}
	if e.ckptStop != nil {
		e.mu.Unlock()
		return ErrCheckpointerRunning
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.ckptStop, e.ckptDone = stop, done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := e.Persist(); err != nil {
					e.mu.Lock()
					e.recordBgErrLocked(err)
					e.mu.Unlock()
				}
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// Close stops the background checkpointer (if running) and, when a data
// dir is configured, persists all dirty datasets one final time. It
// returns every accumulated background persistence failure (checkpointer
// ticks and eviction saves, joined) together with the final persist's.
// The engine remains usable after Close; Close exists to make shutdown
// loss-free.
func (e *Engine) Close() error {
	e.mu.Lock()
	stop, done := e.ckptStop, e.ckptDone
	e.ckptStop, e.ckptDone = nil, nil
	dir := e.dataDir
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	e.mu.Lock()
	bgErr := e.ckptErr
	if e.ckptErrN > maxRetainedBgErrs {
		bgErr = errors.Join(bgErr, fmt.Errorf("engine: %d further background persistence failures not retained", e.ckptErrN-maxRetainedBgErrs))
	}
	e.ckptErr = nil
	e.ckptErrN = 0
	e.mu.Unlock()
	if dir == "" {
		return bgErr
	}
	return errors.Join(bgErr, e.Persist())
}

// SnapshotFromCounts builds a standalone frozen snapshot whose state is
// exactly the given counts — no stream is replayed. It exists for the
// wire layer's dishonest-cloud hook: the cheat rewrites a clone of the
// maintained counts and proves from the result, so the v1 path needs no
// raw-stream retention. Σδ is taken as Σ counts (the two are equal for
// any update stream producing these counts).
func SnapshotFromCounts(f field.Field, u uint64, workers int, counts []int64) (*Snapshot, error) {
	ds, err := NewDataset(f, u, workers)
	if err != nil {
		return nil, err
	}
	if uint64(len(counts)) > ds.params.U {
		return nil, fmt.Errorf("engine: %d counts exceed the padded universe %d", len(counts), ds.params.U)
	}
	st := ds.head
	copy(st.counts, counts)
	for i, c := range counts {
		st.elems[i] = f.FromInt64(c)
		st.total += c
	}
	st.sealed = true
	return &Snapshot{ds: ds, st: st}, nil
}

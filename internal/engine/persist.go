// Resource governance and durability: the Σ-byte memory budget with LRU
// eviction to disk, checkpoint persistence, and crash recovery. See the
// package comment in engine.go for the model.
//
// Locking: the engine lock is always acquired before a dataset lock.
// Residency transitions (evict, rehydrate) happen only with the engine
// lock held, so admission accounting can never race a transition; the
// checkpoint I/O inside a transition is performed under both locks,
// trading some tail latency on the affected dataset for the guarantee
// that no ingested batch is ever dropped between a save and the table
// free. Persist, by contrast, seals the head (copy-on-write) and writes
// outside the locks, so background checkpointing never blocks serving.
package engine

import (
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/field"
	"repro/internal/parallel"
	"repro/internal/store"
)

// ErrBudget reports that admitting a dataset's tables would exceed the
// engine's memory budget and eviction could not make room. The wire
// layer maps it onto its budget-exhausted error frame so clients can
// distinguish "server full" from a protocol failure.
var ErrBudget = errors.New("engine: memory budget exceeded")

// ErrPartialRecovery wraps the per-file failures of a Recover scan that
// still registered every healthy dataset. Callers that want the skip
// semantics (a bit-rotted file must not take the whole server down)
// test for it with errors.Is and continue; anything else from Recover
// is a scan-level failure.
var ErrPartialRecovery = errors.New("engine: some checkpoints were not recovered")

// ErrCheckpointerRunning reports a StartCheckpointer on an engine whose
// background checkpointer is already running — harmless when two
// listeners share one engine and both ask for the same policy.
var ErrCheckpointerRunning = errors.New("engine: checkpointer already running")

// ckptExt is the checkpoint file suffix in the data dir.
const ckptExt = ".ckpt"

// fileForName maps a dataset name (arbitrary UTF-8, up to the wire
// layer's 255 bytes) to a filesystem-safe checkpoint file name.
func fileForName(name string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(name)) + ckptExt
}

// nameFromFile inverts fileForName.
func nameFromFile(file string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(strings.TrimSuffix(file, ckptExt))
	if err != nil {
		return "", fmt.Errorf("engine: %q is not a checkpoint file name: %w", file, err)
	}
	return string(b), nil
}

// SetBudget caps the aggregate bytes of resident dataset tables (counts
// plus field image: 16 bytes per padded universe entry per dataset).
// Zero or negative removes the cap. The budget is enforced at admission
// time — Open of a new dataset and rehydration of an evicted one — by
// evicting least-recently-used datasets to the data dir; without a data
// dir eviction is impossible and admission simply fails at the cap.
// Already-resident datasets are not evicted by SetBudget itself.
func (e *Engine) SetBudget(bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.budget = bytes
}

// ResidentBytes reports the bytes of dataset tables currently resident —
// the quantity SetBudget caps.
func (e *Engine) ResidentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resident
}

// Resident reports whether the dataset's tables are in memory right now.
// Standalone datasets are always resident; an engine-managed dataset may
// be evicted between uses and rehydrates transparently.
func (d *Dataset) Resident() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.head != nil
}

// SetDataDir names the directory datasets checkpoint to (created if
// missing). It enables eviction, Persist, StartCheckpointer, and
// Recover.
func (e *Engine) SetDataDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dataDir = dir
	return nil
}

// touchLocked stamps the dataset most-recently-used. Caller holds e.mu.
func (e *Engine) touchLocked(d *Dataset) {
	e.clock++
	d.lastUse = e.clock
}

// admitLocked makes room for need bytes of tables, evicting LRU resident
// datasets (never exclude) until resident+need fits the budget. Caller
// holds e.mu. A failure is always an ErrBudget.
func (e *Engine) admitLocked(need int64, exclude *Dataset) error {
	if e.budget <= 0 {
		return nil
	}
	if need > e.budget {
		return fmt.Errorf("%w: tables of %d bytes exceed the budget of %d", ErrBudget, need, e.budget)
	}
	for e.resident+need > e.budget {
		if e.dataDir == "" {
			return fmt.Errorf("%w: %d bytes resident, %d more needed, and no data dir is configured for eviction", ErrBudget, e.resident, need)
		}
		victim := e.lruVictimLocked(exclude)
		if victim == nil {
			return fmt.Errorf("%w: %d bytes resident, %d more needed, and nothing is left to evict", ErrBudget, e.resident, need)
		}
		if err := e.evictLocked(victim); err != nil {
			return fmt.Errorf("%w: evicting %q failed: %v", ErrBudget, victim.name, err)
		}
	}
	return nil
}

// lruVictimLocked returns the least-recently-used resident dataset other
// than exclude, or nil if none. Caller holds e.mu.
func (e *Engine) lruVictimLocked(exclude *Dataset) *Dataset {
	var victim *Dataset
	for _, d := range e.datasets {
		if d == exclude {
			continue
		}
		d.mu.Lock()
		resident := d.head != nil
		d.mu.Unlock()
		if !resident {
			continue
		}
		if victim == nil || d.lastUse < victim.lastUse {
			victim = d
		}
	}
	return victim
}

// saveState checkpoints st for this dataset unless an equal-or-newer
// checkpoint is already on disk. Writers serialize on saveMu and disk
// state only moves forward, so a slow save of an older sealed state
// (e.g. a background Persist racing an eviction) can never regress the
// file. The caller must guarantee st is not concurrently mutated (hold
// d.mu, or pass a sealed state).
func (d *Dataset) saveState(dir string, st *tableState) error {
	d.saveMu.Lock()
	defer d.saveMu.Unlock()
	if d.dropped {
		return nil // Drop deleted the file; writing would resurrect the dataset
	}
	if d.diskHas && st.n <= d.diskN {
		return nil
	}
	if err := store.Save(filepath.Join(dir, fileForName(d.name)), d.checkpointOf(st)); err != nil {
		return err
	}
	d.diskN = st.n
	d.diskHas = true
	return nil
}

// evictLocked checkpoints the dataset if dirty and frees its tables.
// Caller holds e.mu; the save happens under both locks so a concurrent
// ingest cannot slip a batch into tables that are about to be freed.
func (e *Engine) evictLocked(d *Dataset) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.head
	if st == nil {
		return nil
	}
	if err := d.saveState(e.dataDir, st); err != nil {
		return err
	}
	st.sealed = true // outstanding snapshots may still share these tables
	d.head = nil
	e.resident -= tableBytes(d.params.U)
	return nil
}

// rehydrate loads an evicted dataset's checkpoint back into memory,
// subject to admission control. No-op if the dataset is already
// resident.
func (e *Engine) rehydrate(d *Dataset) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.mu.Lock()
	resident := d.head != nil
	d.mu.Unlock()
	if resident {
		return nil
	}
	if e.dataDir == "" {
		return fmt.Errorf("engine: dataset %q is evicted but the engine has no data dir", d.name)
	}
	if err := e.admitLocked(tableBytes(d.params.U), d); err != nil {
		return fmt.Errorf("engine: cannot rehydrate dataset %q: %w", d.name, err)
	}
	ckpt, err := store.Load(filepath.Join(e.dataDir, fileForName(d.name)), e.f.Modulus())
	if err != nil {
		return fmt.Errorf("engine: rehydrating dataset %q: %w", d.name, err)
	}
	st, err := d.stateFromCheckpoint(ckpt)
	if err != nil {
		return fmt.Errorf("engine: rehydrating dataset %q: %w", d.name, err)
	}
	d.saveMu.Lock()
	if !d.diskHas || st.n > d.diskN {
		d.diskN = st.n
		d.diskHas = true
	}
	d.saveMu.Unlock()
	d.mu.Lock()
	d.head = st
	d.nMeta = st.n
	d.mu.Unlock()
	e.resident += tableBytes(d.params.U)
	e.touchLocked(d)
	return nil
}

// checkpointOf packages a sealed-or-stable table state for the codec.
// Caller must guarantee st is not concurrently mutated.
func (d *Dataset) checkpointOf(st *tableState) *store.Checkpoint {
	return &store.Checkpoint{
		Universe: d.origU,
		Modulus:  d.f.Modulus(),
		Total:    st.total,
		Updates:  st.n,
		Counts:   st.counts,
	}
}

// checkCheckpoint verifies a structurally valid checkpoint actually
// belongs to this dataset's geometry.
func (d *Dataset) checkCheckpoint(ckpt *store.Checkpoint) error {
	if ckpt.Universe != d.origU {
		return fmt.Errorf("checkpoint universe %d, dataset has %d", ckpt.Universe, d.origU)
	}
	if uint64(len(ckpt.Counts)) != d.params.U {
		return fmt.Errorf("checkpoint table length %d, dataset pads to %d", len(ckpt.Counts), d.params.U)
	}
	return nil
}

// stateFromCheckpoint rebuilds live tables from a checkpoint: the counts
// are taken as-is, the field image is recomputed (it is a deterministic
// function of the counts, so an evict/rehydrate cycle is bit-exact).
func (d *Dataset) stateFromCheckpoint(ckpt *store.Checkpoint) (*tableState, error) {
	if err := d.checkCheckpoint(ckpt); err != nil {
		return nil, err
	}
	st := &tableState{
		counts: ckpt.Counts,
		elems:  make([]field.Elem, len(ckpt.Counts)),
		total:  ckpt.Total,
		n:      ckpt.Updates,
	}
	f := d.f
	rebuild := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.elems[i] = f.FromInt64(st.counts[i])
		}
	}
	if nw := parallel.Workers(d.workers); nw > 1 && len(st.counts) >= minShardBatch {
		parallel.ForGrain(nw, len(st.counts), 1<<12, func(_, lo, hi int) { rebuild(lo, hi) })
	} else {
		rebuild(0, len(st.counts))
	}
	return st, nil
}

// Persist checkpoints every dirty dataset to the data dir and returns
// the first errors encountered (joined). The head is sealed before the
// write, so saving proceeds outside the locks while ingestion continues
// against a copy-on-write clone; the crash-loss window of a server that
// persists every t is therefore at most t of ingestion.
func (e *Engine) Persist() error {
	e.mu.Lock()
	dir := e.dataDir
	all := make([]*Dataset, 0, len(e.datasets))
	for _, d := range e.datasets {
		all = append(all, d)
	}
	e.mu.Unlock()
	if dir == "" {
		return fmt.Errorf("engine: Persist needs a data dir (SetDataDir)")
	}
	var errs []error
	for _, d := range all {
		// Peek at the disk watermark to skip sealing clean datasets (the
		// peek is advisory: saveState re-checks under its own lock).
		d.saveMu.Lock()
		diskN, diskHas := d.diskN, d.diskHas
		d.saveMu.Unlock()
		d.mu.Lock()
		st := d.head
		if st == nil || (diskHas && st.n == diskN) {
			d.mu.Unlock()
			continue // evicted datasets were saved on eviction; clean ones are on disk already
		}
		st.sealed = true
		d.mu.Unlock()
		if err := d.saveState(dir, st); err != nil {
			errs = append(errs, fmt.Errorf("dataset %q: %w", d.name, err))
		}
	}
	return errors.Join(errs...)
}

// Recover scans the data dir and registers every checkpointed dataset,
// validating each file fully (checksum, version, field). Datasets are
// loaded resident until the memory budget fills, then registered
// evicted — they rehydrate on first use. Names already registered are
// skipped, so Recover is idempotent and safe on a shared engine. It
// returns how many datasets were recovered; per-file failures never
// abort the scan — they are joined under ErrPartialRecovery so callers
// can warn and keep serving the healthy datasets.
func (e *Engine) Recover() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dataDir == "" {
		return 0, fmt.Errorf("engine: Recover needs a data dir (SetDataDir)")
	}
	ents, err := os.ReadDir(e.dataDir)
	if err != nil {
		return 0, err
	}
	n := 0
	var errs []error
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ckptExt) {
			continue
		}
		name, err := nameFromFile(ent.Name())
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if _, ok := e.datasets[name]; ok {
			continue
		}
		if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
			errs = append(errs, fmt.Errorf("engine: dataset limit of %d reached; %q not recovered", e.maxDatasets, name))
			continue
		}
		ckpt, err := store.Load(filepath.Join(e.dataDir, ent.Name()), e.f.Modulus())
		if err != nil {
			errs = append(errs, err)
			continue
		}
		// A shell only: tables are rebuilt below iff the dataset will
		// actually be resident — an over-budget fleet restarts without
		// paying O(u) per dataset it is not going to keep in memory.
		ds, err := newDatasetShell(e.f, ckpt.Universe, e.workers)
		if err != nil {
			errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
			continue
		}
		ds.name = name
		ds.eng = e
		if err := ds.checkCheckpoint(ckpt); err != nil {
			errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
			continue
		}
		size := tableBytes(ds.params.U)
		if e.budget <= 0 || e.resident+size <= e.budget {
			st, err := ds.stateFromCheckpoint(ckpt)
			if err != nil {
				errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
				continue
			}
			ds.head = st
			e.resident += size
		} // else: stays evicted (head nil) until first use
		ds.nMeta = ckpt.Updates
		ds.diskN = ckpt.Updates
		ds.diskHas = true
		e.touchLocked(ds)
		e.datasets[name] = ds
		n++
	}
	if len(errs) > 0 {
		return n, fmt.Errorf("%w: %w", ErrPartialRecovery, errors.Join(errs...))
	}
	return n, nil
}

// removeCheckpointLocked deletes the dataset's checkpoint file, if any.
// Caller holds e.mu.
func (e *Engine) removeCheckpointLocked(name string) {
	if e.dataDir != "" {
		_ = os.Remove(filepath.Join(e.dataDir, fileForName(name)))
	}
}

// StartCheckpointer persists dirty datasets every interval on a
// background goroutine until Close, bounding crash loss to one interval
// of ingestion. Background failures are retained and surfaced by Close.
func (e *Engine) StartCheckpointer(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("engine: checkpoint interval must be positive, got %v", interval)
	}
	e.mu.Lock()
	if e.dataDir == "" {
		e.mu.Unlock()
		return fmt.Errorf("engine: StartCheckpointer needs a data dir (SetDataDir)")
	}
	if e.ckptStop != nil {
		e.mu.Unlock()
		return ErrCheckpointerRunning
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.ckptStop, e.ckptDone = stop, done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := e.Persist(); err != nil {
					e.mu.Lock()
					e.ckptErr = err
					e.mu.Unlock()
				}
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// Close stops the background checkpointer (if running) and, when a data
// dir is configured, persists all dirty datasets one final time. It
// returns any retained background checkpoint failure joined with the
// final persist's. The engine remains usable after Close; Close exists
// to make shutdown loss-free.
func (e *Engine) Close() error {
	e.mu.Lock()
	stop, done := e.ckptStop, e.ckptDone
	e.ckptStop, e.ckptDone = nil, nil
	dir := e.dataDir
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	e.mu.Lock()
	bgErr := e.ckptErr
	e.ckptErr = nil
	e.mu.Unlock()
	if dir == "" {
		return bgErr
	}
	return errors.Join(bgErr, e.Persist())
}

// SnapshotFromCounts builds a standalone frozen snapshot whose state is
// exactly the given counts — no stream is replayed. It exists for the
// wire layer's dishonest-cloud hook: the cheat rewrites a clone of the
// maintained counts and proves from the result, so the v1 path needs no
// raw-stream retention. Σδ is taken as Σ counts (the two are equal for
// any update stream producing these counts).
func SnapshotFromCounts(f field.Field, u uint64, workers int, counts []int64) (*Snapshot, error) {
	ds, err := NewDataset(f, u, workers)
	if err != nil {
		return nil, err
	}
	if uint64(len(counts)) > ds.params.U {
		return nil, fmt.Errorf("engine: %d counts exceed the padded universe %d", len(counts), ds.params.U)
	}
	st := ds.head
	copy(st.counts, counts)
	for i, c := range counts {
		st.elems[i] = f.FromInt64(c)
		st.total += c
	}
	st.sealed = true
	return &Snapshot{ds: ds, st: st}, nil
}

package engine_test

// GKR/circuit workload tests: the engine contract (snapshot provers
// bit-identical to stream replay, surviving evict→rehydrate) extended to
// QueryCircuit, mirroring the fixed-kind tests in engine_test.go and
// evict_test.go.

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
	"repro/internal/wire"
)

// circuitKinds are the registry families driven through QueryCircuit.
func circuitKinds() []struct {
	kind   engine.QueryKind
	params engine.QueryParams
} {
	return []struct {
		kind   engine.QueryKind
		params engine.QueryParams
	}{
		{engine.QueryCircuit, engine.QueryParams{Circuit: circuit.FamilyF2}},
		{engine.QueryCircuit, engine.QueryParams{Circuit: circuit.FamilyCount}},
		{engine.QueryCircuit, engine.QueryParams{Circuit: circuit.FamilyMatMul, A: 16}},
	}
}

// TestGKRSnapshotTranscriptsMatchReplay extends the engine's central
// contract to circuit queries: a GKR prover built from a snapshot (zero
// replay) holds a conversation bit-identical to one built by replaying
// the stream, for every family and worker count.
func TestGKRSnapshotTranscriptsMatchReplay(t *testing.T) {
	const u = 500 // deliberately not a power of two: exercises padding
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(44))
	for _, workers := range []int{0, 2, -1} {
		ds, err := engine.NewDataset(f61, u, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Ingest(ups); err != nil {
			t.Fatal(err)
		}
		snap := ds.Snapshot()
		for _, c := range circuitKinds() {
			seed := uint64(12_000 + uint64(len(c.params.Circuit)))
			pSnap, err := snap.NewProver(c.kind, c.params)
			if err != nil {
				t.Fatal(err)
			}
			want := runTranscript(t, u, c.kind, c.params, ups, seed, pSnap)
			pReplay, err := wire.BuildProver(f61, u, c.kind, c.params, ups, workers)
			if err != nil {
				t.Fatal(err)
			}
			got := runTranscript(t, u, c.kind, c.params, ups, seed, pReplay)
			if err := sameMsgs(want, got); err != nil {
				t.Errorf("%s workers=%d: snapshot/replay transcript differs: %v", c.params.Circuit, workers, err)
			}
		}
	}
}

// TestEvictRehydrateGKRTranscripts mirrors TestEvictRehydrateTranscripts
// for the circuit families: a GKR prover built from a snapshot that was
// evicted to disk and rehydrated is bit-identical in conversation to one
// from a never-evicted dataset.
func TestEvictRehydrateGKRTranscripts(t *testing.T) {
	ups := stream.UniformDeltas(evictU, 20, field.NewSplitMix64(45))
	for _, workers := range []int{0, 2, -1} {
		base, err := engine.NewDataset(f61, evictU, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := base.Ingest(ups); err != nil {
			t.Fatal(err)
		}
		baseSnap := base.Snapshot()

		e := engine.New(f61, workers)
		if err := e.SetDataDir(t.TempDir()); err != nil {
			t.Fatal(err)
		}
		e.SetBudget(oneDataset)
		hot, err := e.Open("hot", evictU)
		if err != nil {
			t.Fatal(err)
		}
		if err := hot.Ingest(ups); err != nil {
			t.Fatal(err)
		}
		decoy, err := e.Open("decoy", evictU) // admission evicts "hot"
		if err != nil {
			t.Fatal(err)
		}

		for _, c := range circuitKinds() {
			// Force an evict/rehydrate cycle before each query.
			if _, err := decoy.SnapshotErr(); err != nil {
				t.Fatal(err)
			}
			if hot.Resident() {
				t.Fatalf("%s: hot still resident after decoy touch", c.params.Circuit)
			}
			snap, err := hot.SnapshotErr()
			if err != nil {
				t.Fatalf("%s: rehydrate: %v", c.params.Circuit, err)
			}
			seed := uint64(13_000 + uint64(len(c.params.Circuit)))
			pBase, err := baseSnap.NewProver(c.kind, c.params)
			if err != nil {
				t.Fatal(err)
			}
			want := runTranscript(t, evictU, c.kind, c.params, ups, seed, pBase)
			pCold, err := snap.NewProver(c.kind, c.params)
			if err != nil {
				t.Fatal(err)
			}
			got := runTranscript(t, evictU, c.kind, c.params, ups, seed, pCold)
			if err := sameMsgs(want, got); err != nil {
				t.Errorf("%s workers=%d: evicted/rehydrated transcript differs: %v", c.params.Circuit, workers, err)
			}
		}
	}
}

// TestGKRUnknownFamily pins the typed error for a bad circuit name.
func TestGKRUnknownFamily(t *testing.T) {
	ds, err := engine.NewDataset(f61, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ds.Snapshot().NewProver(engine.QueryCircuit, engine.QueryParams{Circuit: "NOPE"})
	if !errors.Is(err, circuit.ErrUnknownFamily) {
		t.Fatalf("err = %v, want circuit.ErrUnknownFamily", err)
	}
}

// Checkpoint handoff: the entry points a shard router uses to move a
// dataset between engines without losing an acknowledged batch.
//
// The protocol is deliberately built from the persistence machinery that
// already exists (see persist.go) rather than a streaming copy:
//
//	source.Release(name)  → final checkpoint on disk, dataset detached
//	<move the .ckpt file> → store.DatasetFile names it
//	target.Adopt(name)    → registry entry on the target, same bytes
//
// Release seals and persists the dataset's final state, removes it from
// the registry, and poisons the handle: every later table use fails with
// ErrReleased (wrapped), a typed signal that the dataset has a new home.
// Because the checkpoint codec is deterministic and the field image is a
// pure function of the counts, transcripts and cached-proof bytes are
// bit-identical across the move — the same guarantee the evict/rehydrate
// cycle already makes, extended across processes.
package engine

import (
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/store"
)

// ErrReleased reports a table operation on a dataset that was released
// for handoff: its final state is on disk (or already adopted
// elsewhere) and this engine no longer owns it. Clients retrying
// through a router reach the dataset's new shard.
var ErrReleased = errors.New("engine: dataset released for handoff")

// Release detaches the named dataset for handoff: it waits out
// in-flight residency transitions, bars further ingestion and
// snapshots (ErrReleased), writes the final checkpoint, and removes the
// dataset from the registry — leaving the checkpoint file in the data
// dir for the new owner to adopt (unlike Drop, which deletes it). It
// returns the update count the checkpoint covers, which the adopter can
// compare against its own.
//
// Ordering guarantee: any IngestColumns that was acknowledged before
// Release returns is in the written checkpoint; any that races the
// release either lands in full before the final save or fails with
// ErrReleased in full (batches are atomic). No acked batch is lost.
//
// The released name is tombstoned: a later Open of it fails with
// ErrReleased instead of creating a fresh empty dataset — the guard
// against a client whose router still holds the stale route during a
// cross-process rebalance. Adopt (the name coming back) and Drop (the
// operator forgetting it) clear the tombstone.
func (e *Engine) Release(name string) (uint64, error) {
	e.mu.Lock()
	if e.dataDir == "" {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: Release needs a data dir (SetDataDir)")
	}
	ds, ok := e.datasets[name]
	if !ok {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: unknown dataset %q", name)
	}
	for {
		ds.mu.Lock()
		if ds.res != resEvicting && ds.res != resRehydrating {
			break
		}
		// Same dance as Drop: a transition's completion needs e.mu, so
		// release it while waiting on the dataset's latch.
		e.mu.Unlock()
		ds.awaitStableLocked()
		ds.mu.Unlock()
		e.mu.Lock()
	}
	if e.datasets[name] != ds { // re-registered while we waited
		ds.mu.Unlock()
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: dataset %q was replaced mid-release; retry", name)
	}
	// Poison the handle and capture the final state under the same d.mu
	// hold: every batch that completed before this instant is in st;
	// every use after it fails typed. There is no in-between.
	ds.detached = true
	st := ds.head // nil iff evicted, i.e. already durably on disk
	n := ds.nMeta
	wasResident := ds.res == resResident && st != nil
	if wasResident {
		st.sealed = true // outstanding snapshots may share these tables
	}
	delete(e.datasets, name)
	if e.releasedNames == nil {
		e.releasedNames = make(map[string]struct{})
	}
	e.releasedNames[name] = struct{}{}
	if wasResident {
		e.resident -= tableBytes(ds.params.U)
		e.admitCond.Broadcast()
	}
	ds.eng = nil
	dir := e.dataDir
	ds.mu.Unlock()
	e.mu.Unlock()

	if wasResident {
		// The final save runs outside every lock, like any checkpoint
		// write. An evicted dataset needs none: its tables were freed only
		// after a durable save (invariant 7).
		if err := ds.saveState(dir, st); err != nil {
			e.unreleaseDataset(name, ds, wasResident)
			return 0, fmt.Errorf("engine: releasing %q: %w", name, err)
		}
	}
	// Bar any still-in-flight background Persist writer from touching the
	// file we are about to give away. Our own save is already durable;
	// stale writers were refused by the diskN watermark regardless.
	ds.saveMu.Lock()
	ds.dropped = true
	ds.saveMu.Unlock()
	e.fireDropHooks(name)
	return n, nil
}

// unreleaseDataset rolls a failed Release back: the dataset returns to
// the registry (if its name was not taken meanwhile) and serves again.
func (e *Engine) unreleaseDataset(name string, ds *Dataset, wasResident bool) {
	e.mu.Lock()
	ds.mu.Lock()
	ds.detached = false
	delete(e.releasedNames, name)
	if _, taken := e.datasets[name]; !taken {
		ds.eng = e
		e.datasets[name] = ds
		if wasResident {
			e.resident += tableBytes(ds.params.U)
		}
		e.touchLocked(ds)
	}
	ds.mu.Unlock()
	e.mu.Unlock()
}

// Adopt registers a dataset from a checkpoint file already present in
// the data dir — the receiving half of a handoff, or the repair path
// after a shard loss (move the lost shard's files, adopt each). It is
// Recover for one named file: the checkpoint is fully validated, loaded
// resident if the memory budget allows and evicted otherwise, and the
// update count it covers is returned. Adopting a name that is already
// registered is an error — the router flips a route only after the
// source released, so a collision means two owners.
func (e *Engine) Adopt(name string) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dataDir == "" {
		return 0, fmt.Errorf("engine: Adopt needs a data dir (SetDataDir)")
	}
	if _, ok := e.datasets[name]; ok {
		return 0, fmt.Errorf("engine: dataset %q is already registered; refusing to adopt a second owner", name)
	}
	if e.maxDatasets > 0 && len(e.datasets) >= e.maxDatasets {
		return 0, fmt.Errorf("engine: dataset limit of %d reached; %q not adopted", e.maxDatasets, name)
	}
	ckpt, err := store.Load(filepath.Join(e.dataDir, fileForName(name)), e.f.Modulus())
	if err != nil {
		return 0, fmt.Errorf("engine: adopting %q: %w", name, err)
	}
	ds, err := shellForCheckpoint(e.f, ckpt, e.workers)
	if err != nil {
		return 0, fmt.Errorf("engine: adopting %q: %w", name, err)
	}
	ds.name = name
	ds.eng = e
	if err := ds.checkCheckpoint(ckpt); err != nil {
		return 0, fmt.Errorf("engine: adopting %q: %w", name, err)
	}
	size := tableBytes(ds.params.U)
	if e.budget <= 0 || e.resident+size <= e.budget {
		st, err := ds.stateFromCheckpoint(ckpt)
		if err != nil {
			return 0, fmt.Errorf("engine: adopting %q: %w", name, err)
		}
		ds.head = st
		ds.res = resResident
		e.resident += size
	} // else: stays evicted (head nil) until first use
	ds.nMeta = ckpt.Updates
	ds.verMeta = ckpt.Version
	ds.diskN = ckpt.Updates
	ds.diskHas = true
	e.touchLocked(ds)
	e.datasets[name] = ds
	delete(e.releasedNames, name)
	return ckpt.Updates, nil
}

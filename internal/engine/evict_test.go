package engine_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// Budget geometry used throughout: u = 500 pads to 512 entries, and a
// dataset's resident tables cost 16 bytes per padded entry.
const (
	evictU     = 500
	oneDataset = 512 * 16
)

// runTranscript drives one full conversation against the prover and
// returns every prover message, for bit-exact comparison.
func runTranscript(t *testing.T, u uint64, kind engine.QueryKind, params engine.QueryParams, ups []stream.Update, seed uint64, p core.ProverSession) []core.Msg {
	t.Helper()
	v, obs, err := newVerifier(f61, u, kind, params, field.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
	rec := &recordingProver{inner: p}
	if _, err := core.Run(rec, v); err != nil {
		t.Fatalf("conversation rejected: %v", err)
	}
	return rec.msgs
}

// TestEvictRehydrateTranscripts is the satellite crosscheck: for every
// query kind × worker count, a prover built from a snapshot that was
// evicted to disk and rehydrated is bit-identical in conversation to one
// from a never-evicted dataset. Eviction is forced before every query by
// ping-ponging two datasets through a one-dataset budget.
func TestEvictRehydrateTranscripts(t *testing.T) {
	ups := stream.UniformDeltas(evictU, 20, field.NewSplitMix64(43))
	for _, workers := range []int{0, 2, -1} {
		// Baseline: a standalone dataset that is never evicted.
		base, err := engine.NewDataset(f61, evictU, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := base.Ingest(ups); err != nil {
			t.Fatal(err)
		}
		baseSnap := base.Snapshot()

		e := engine.New(f61, workers)
		if err := e.SetDataDir(t.TempDir()); err != nil {
			t.Fatal(err)
		}
		e.SetBudget(oneDataset)
		hot, err := e.Open("hot", evictU)
		if err != nil {
			t.Fatal(err)
		}
		if err := hot.Ingest(ups); err != nil {
			t.Fatal(err)
		}
		decoy, err := e.Open("decoy", evictU) // admission evicts "hot"
		if err != nil {
			t.Fatal(err)
		}
		if hot.Resident() {
			t.Fatal("opening a second dataset under a one-dataset budget did not evict the first")
		}

		for _, c := range allKinds() {
			// Force an evict/rehydrate cycle: touching the decoy's tables
			// kicks "hot" out (if it isn't already), and the query below
			// rehydrates it from its checkpoint.
			if _, err := decoy.SnapshotErr(); err != nil {
				t.Fatal(err)
			}
			if hot.Resident() {
				t.Fatalf("kind=%d: hot still resident after decoy touch", c.kind)
			}
			snap, err := hot.SnapshotErr()
			if err != nil {
				t.Fatalf("kind=%d: rehydrate: %v", c.kind, err)
			}
			if !hot.Resident() {
				t.Fatalf("kind=%d: snapshot left hot evicted", c.kind)
			}
			if snap.Updates() != uint64(len(ups)) || snap.Total() != baseSnap.Total() {
				t.Fatalf("kind=%d: rehydrated state drifted: %d updates Σ%d, want %d Σ%d",
					c.kind, snap.Updates(), snap.Total(), len(ups), baseSnap.Total())
			}
			seed := uint64(11_000 + uint64(c.kind))
			pBase, err := baseSnap.NewProver(c.kind, c.params)
			if err != nil {
				t.Fatal(err)
			}
			want := runTranscript(t, evictU, c.kind, c.params, ups, seed, pBase)
			pCold, err := snap.NewProver(c.kind, c.params)
			if err != nil {
				t.Fatal(err)
			}
			got := runTranscript(t, evictU, c.kind, c.params, ups, seed, pCold)
			if err := sameMsgs(want, got); err != nil {
				t.Errorf("kind=%d workers=%d: evicted/rehydrated transcript differs: %v", c.kind, workers, err)
			}
		}
	}
}

// TestBudgetAdmission: admission failures are typed, atomic, and leave
// the resident set intact.
func TestBudgetAdmission(t *testing.T) {
	// Without a data dir, the budget is a hard cap: nothing can be
	// evicted to make room.
	e := engine.New(f61, 0)
	e.SetBudget(oneDataset)
	if _, err := e.Open("a", evictU); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Open("b", evictU); !errors.Is(err, engine.ErrBudget) {
		t.Fatalf("over-budget open without a data dir = %v, want ErrBudget", err)
	}
	if got := e.ResidentBytes(); got != oneDataset {
		t.Fatalf("failed admission changed accounting: %d resident", got)
	}
	// A single dataset larger than the whole budget can never be
	// admitted, data dir or not.
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	e2.SetBudget(oneDataset / 2)
	if _, err := e2.Open("big", evictU); !errors.Is(err, engine.ErrBudget) {
		t.Fatalf("oversized dataset = %v, want ErrBudget", err)
	}
	// With a data dir, the same sequence succeeds by evicting LRU.
	e3 := engine.New(f61, 0)
	if err := e3.SetDataDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	e3.SetBudget(oneDataset)
	if _, err := e3.Open("a", evictU); err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Open("b", evictU); err != nil {
		t.Fatalf("open with eviction available: %v", err)
	}
	if got := e3.ResidentBytes(); got != oneDataset {
		t.Fatalf("resident bytes after eviction = %d, want %d", got, oneDataset)
	}
}

// TestPersistRecover: an engine restarted over the same data dir serves
// every checkpointed dataset — update counts survive without
// rehydration, queries verify against the original stream.
func TestPersistRecover(t *testing.T) {
	dir := t.TempDir()
	upsA := stream.UniformDeltas(evictU, 9, field.NewSplitMix64(50))
	upsB := stream.UnitIncrements(evictU, 700, field.NewSplitMix64(51))

	e := engine.New(f61, 0)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	a, err := e.Open("alpha", evictU)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Ingest(upsA); err != nil {
		t.Fatal(err)
	}
	b, err := e.Open("beta", evictU)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(upsB); err != nil {
		t.Fatal(err)
	}
	if err := e.Persist(); err != nil {
		t.Fatal(err)
	}
	// Persist is incremental: a second call with nothing dirty is a no-op.
	if err := e.Persist(); err != nil {
		t.Fatal(err)
	}

	// "Crash": the old engine is simply abandoned. A fresh engine over
	// the same dir recovers both datasets.
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	n, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d datasets, want 2", n)
	}
	if got := e2.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("recovered names = %v", got)
	}
	// Recover is idempotent.
	if n, err := e2.Recover(); err != nil || n != 0 {
		t.Fatalf("second Recover = (%d, %v), want (0, nil)", n, err)
	}
	for name, ups := range map[string][]stream.Update{"alpha": upsA, "beta": upsB} {
		ds, ok := e2.Get(name)
		if !ok {
			t.Fatalf("dataset %q missing after recovery", name)
		}
		if ds.Updates() != uint64(len(ups)) {
			t.Fatalf("%q recovered %d updates, want %d", name, ds.Updates(), len(ups))
		}
		snap, err := ds.SnapshotErr()
		if err != nil {
			t.Fatal(err)
		}
		p, err := snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{})
		if err != nil {
			t.Fatal(err)
		}
		_ = runTranscript(t, evictU, engine.QuerySelfJoinSize, engine.QueryParams{}, ups, 600, p)
	}
}

// TestBackgroundCheckpointer: dirty datasets hit the disk within the
// interval, and Close stops the loop and flushes the rest.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	e := engine.New(f61, 0)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := e.StartCheckpointer(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := e.StartCheckpointer(time.Second); err == nil {
		t.Fatal("second StartCheckpointer accepted")
	}
	ds, err := e.Open("logs", evictU)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(evictU, 100, field.NewSplitMix64(60))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer wrote nothing within the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	// More ingestion, then Close: the final flush must capture it.
	if err := ds.Ingest(stream.UnitIncrements(evictU, 50, field.NewSplitMix64(61))); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	ds2, ok := e2.Get("logs")
	if !ok {
		t.Fatal("dataset missing after recovery")
	}
	if ds2.Updates() != 150 {
		t.Fatalf("recovered %d updates, want 150 (final flush lost data)", ds2.Updates())
	}
}

// blockCheckpoint makes the checkpoint file path for a dataset
// unwritable by planting a directory where the file must be renamed —
// the portable stand-in for an unwritable data dir (chmod is useless
// under root). ckptFile is fileForName's output, hardcoded per name.
func blockCheckpoint(t *testing.T, dir, ckptFile string) {
	t.Helper()
	if err := os.Mkdir(filepath.Join(dir, ckptFile), 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointerAccumulatesFailures: the background checkpointer must
// retain *every* distinct failure, not just the last one — an early
// failure on dataset "a" must still be visible in Close's error after
// later ticks fail only on "b".
func TestCheckpointerAccumulatesFailures(t *testing.T) {
	const (
		aFile = "YQ.ckpt" // fileForName("a")
		bFile = "Yg.ckpt" // fileForName("b")
	)
	dir := t.TempDir()
	e := engine.New(f61, 0)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	blockCheckpoint(t, dir, aFile)
	a, err := e.Open("a", evictU)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Open("b", evictU)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Ingest(stream.UnitIncrements(evictU, 10, field.NewSplitMix64(70))); err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(stream.UnitIncrements(evictU, 10, field.NewSplitMix64(71))); err != nil {
		t.Fatal(err)
	}
	if err := e.StartCheckpointer(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Phase 1: ticks fail on "a" (blocked) and succeed on "b". b's file
	// appearing proves at least one tick ran — and that tick recorded
	// a's failure.
	waitForFile := func(name string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && !fi.IsDir() {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("checkpoint %s never appeared", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitForFile(bFile)
	// Phase 2: unblock "a", block "b"'s *next* save, dirty both. a's
	// file appearing proves a later tick ran clean on "a" while failing
	// on "b" — so with last-failure-only retention, a's earlier failure
	// would now be gone.
	if err := os.Remove(filepath.Join(dir, aFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, bFile)); err != nil {
		t.Fatal(err)
	}
	blockCheckpoint(t, dir, bFile)
	if err := a.Ingest(stream.UnitIncrements(evictU, 5, field.NewSplitMix64(72))); err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(stream.UnitIncrements(evictU, 5, field.NewSplitMix64(73))); err != nil {
		t.Fatal(err)
	}
	waitForFile(aFile)

	err = e.Close()
	if err == nil {
		t.Fatal("Close reported no error despite failed background checkpoints")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"b"`) {
		t.Fatalf("Close error lost the recent failure on %q: %v", "b", err)
	}
	if !strings.Contains(msg, `"a"`) {
		t.Fatalf("Close error lost the earlier failure on %q (last-failure-only retention): %v", "a", err)
	}
}

// TestDropRemovesCheckpoint: Drop deletes the on-disk state too, so a
// dropped dataset does not resurrect on restart.
func TestDropRemovesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := engine.New(f61, 0)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := e.Open("gone", evictU)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(evictU, 10, field.NewSplitMix64(62))); err != nil {
		t.Fatal(err)
	}
	if err := e.Persist(); err != nil {
		t.Fatal(err)
	}
	e.Drop("gone")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("Drop left %d files in the data dir", len(ents))
	}
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if n, err := e2.Recover(); err != nil || n != 0 {
		t.Fatalf("Recover after Drop = (%d, %v), want (0, nil)", n, err)
	}
}

// TestRecoverSkipsDamage: a mangled checkpoint is reported but does not
// take down recovery of the healthy datasets.
func TestRecoverSkipsDamage(t *testing.T) {
	dir := t.TempDir()
	e := engine.New(f61, 0)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := e.Open("good", evictU)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(evictU, 10, field.NewSplitMix64(63))); err != nil {
		t.Fatal(err)
	}
	if err := e.Persist(); err != nil {
		t.Fatal(err)
	}
	// A torn file alongside it.
	if err := os.WriteFile(filepath.Join(dir, "YmFk.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	n, err := e2.Recover()
	if n != 1 {
		t.Fatalf("recovered %d datasets, want 1", n)
	}
	if !errors.Is(err, engine.ErrPartialRecovery) {
		t.Fatalf("Recover = %v, want ErrPartialRecovery", err)
	}
	if _, ok := e2.Get("good"); !ok {
		t.Fatal("healthy dataset not recovered")
	}
}

// TestConcurrentEvictRehydrate hammers a budgeted durable engine from
// many goroutines — two datasets ping-ponging through a one-dataset
// budget while writers ingest, readers snapshot, and the background
// checkpointer runs. Meaningful mostly under -race; the final recovery
// proves no acknowledged batch was lost in any transition.
func TestConcurrentEvictRehydrate(t *testing.T) {
	const (
		writers    = 2
		iterations = 15
		batch      = 64
	)
	dir := t.TempDir()
	e := engine.New(f61, 2)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	e.SetBudget(oneDataset)
	if err := e.StartCheckpointer(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var dss [2]*engine.Dataset
	for i, name := range []string{"x", "y"} {
		ds, err := e.Open(name, evictU)
		if err != nil {
			t.Fatal(err)
		}
		dss[i] = ds
	}
	var wg sync.WaitGroup
	for di, ds := range dss {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(ds *engine.Dataset, seed uint64) {
				defer wg.Done()
				rng := field.NewSplitMix64(seed)
				for i := 0; i < iterations; i++ {
					if err := ds.Ingest(stream.UnitIncrements(evictU, batch, rng)); err != nil {
						t.Error(err)
						return
					}
				}
			}(ds, uint64(1000+10*di+w))
		}
		wg.Add(1)
		go func(ds *engine.Dataset) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				snap, err := ds.SnapshotErr()
				if err != nil {
					t.Error(err)
					return
				}
				var total int64
				for j, c := range snap.Counts() {
					total += c
					if f61.FromInt64(c) != snap.Elems()[j] {
						t.Error("snapshot tore across evict/rehydrate: counts and elems disagree")
						return
					}
				}
				if total != snap.Total() {
					t.Errorf("snapshot tore: Σcounts=%d but Total=%d", total, snap.Total())
					return
				}
			}
		}(ds)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing acknowledged may be missing after a restart.
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if n, err := e2.Recover(); err != nil || n != 2 {
		t.Fatalf("Recover = (%d, %v), want (2, nil)", n, err)
	}
	const want = writers * iterations * batch
	for _, name := range []string{"x", "y"} {
		ds, ok := e2.Get(name)
		if !ok {
			t.Fatalf("dataset %q missing", name)
		}
		if ds.Updates() != want {
			t.Fatalf("%q recovered %d updates, want %d (a batch was lost in an eviction race)", name, ds.Updates(), want)
		}
	}
}

package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fs"
	"repro/internal/gkr"
	"repro/internal/stream"
)

// This file is the verifier-construction side of the non-interactive
// replay layer. NewStreamVerifier builds the verifier session for any
// query kind — the object a client holds for offline proof
// verification. Snapshot.NewVerifier seeds one from the snapshot's
// maintained counts, so the engine can run a complete prover↔verifier
// conversation locally and post the recorded transcript as a
// Fiat–Shamir proof (fs.Proof).
//
// Every verifier's streamed state is linear in the update deltas (LDE
// evaluations, hash-tree roots, Σδ totals), so observing one aggregated
// update per nonzero count yields exactly the fingerprint of the
// original stream — the package tests crosscheck this against verifiers
// that observed the stream update by update.

// StreamVerifier is a verifier session that also observes stream
// updates — what a client keeps while uploading, and later drives
// either interactively or against a posted proof.
type StreamVerifier interface {
	core.VerifierSession
	Observe(stream.Update) error
}

// NewStreamVerifier constructs the verifier session for one query kind
// with its randomness drawn from rng and its query parameters set, but
// with no observed state: the caller streams its own copy of the
// updates into it. Pass a transcript-derived rng (fs.Binding.RNG) to
// verify a posted proof offline, or a secret one for an interactive
// conversation.
func NewStreamVerifier(f field.Field, u uint64, kind QueryKind, params QueryParams, rng field.RNG) (StreamVerifier, error) {
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(params.K)
		}
		proto, err := core.NewFk(f, u, k)
		if err != nil {
			return nil, err
		}
		return proto.NewVerifier(rng), nil
	case QueryRangeSum:
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.A, params.B)
	case QueryRangeQuery:
		proto, err := core.NewRangeQuery(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.A, params.B)
	case QueryIndex:
		proto, err := core.NewIndex(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.A)
	case QueryDictionary:
		proto, err := core.NewDictionary(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.A)
	case QueryPredecessor:
		proto, err := core.NewPredecessor(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.A)
	case QuerySuccessor:
		proto, err := core.NewSuccessor(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.A)
	case QueryKLargest:
		proto, err := core.NewKLargest(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(int(params.K))
	case QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.SetQuery(params.Phi)
	case QueryF0:
		proto, err := core.NewF0(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		return proto.NewVerifier(rng), nil
	case QueryFmax:
		proto, err := core.NewFmax(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		return proto.NewVerifier(rng), nil
	case QueryCircuit:
		return gkr.NewVerifierFor(f, circuit.Spec{Name: params.Circuit, Arg: params.A}, u, rng)
	default:
		return nil, fmt.Errorf("engine: unknown query kind %d", kind)
	}
}

// updatesFromCounts materializes one aggregated update per nonzero
// count.
func (s *Snapshot) updatesFromCounts() []stream.Update {
	nnz := 0
	for _, c := range s.st.counts {
		if c != 0 {
			nnz++
		}
	}
	ups := make([]stream.Update, 0, nnz)
	for i, c := range s.st.counts {
		if c != 0 {
			ups = append(ups, stream.Update{Index: uint64(i), Delta: c})
		}
	}
	return ups
}

func (s *Snapshot) seed(v StreamVerifier) error {
	for i, c := range s.st.counts {
		if c != 0 {
			if err := v.Observe(stream.Update{Index: uint64(i), Delta: c}); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewVerifier constructs the verifier session for one query kind with
// its randomness drawn from rng and its streamed fingerprint seeded
// from the snapshot's maintained counts. Pass a transcript-derived rng
// (fs.Binding.RNG) for Fiat–Shamir proof generation, or a secret one to
// audit the server's own state interactively.
func (s *Snapshot) NewVerifier(kind QueryKind, params QueryParams, rng field.RNG) (core.VerifierSession, error) {
	v, err := NewStreamVerifier(s.ds.f, s.ds.origU, kind, params, rng)
	if err != nil {
		return nil, err
	}
	if b, ok := v.(interface {
		ObserveBatch([]stream.Update, int) error
	}); ok {
		// The F2/Fk fingerprint is a plain LDE evaluation, so the whole
		// count table folds in through the parallel batch path.
		return v, b.ObserveBatch(s.updatesFromCounts(), s.ds.workers)
	}
	return v, s.seed(v)
}

// FSQuery returns the canonical fs.Query descriptor for a query.
func FSQuery(kind QueryKind, params QueryParams) fs.Query {
	return fs.Query{
		Kind: uint8(kind), A: params.A, B: params.B,
		K: params.K, Phi: params.Phi, Circuit: params.Circuit,
	}
}

// ProofBinding is the Fiat–Shamir binding a proof of this query over
// this snapshot commits to. An offline verifier reconstructs the same
// binding from values it knows independently (plus the server-asserted
// version) to derive the challenge randomness.
func (s *Snapshot) ProofBinding(kind QueryKind, params QueryParams) fs.Binding {
	return fs.Binding{
		Modulus:  s.ds.f.Modulus(),
		Universe: s.ds.origU,
		Dataset:  s.ds.name,
		Version:  s.st.version,
		Query:    FSQuery(kind, params),
	}
}

// GenerateProof runs one complete Fiat–Shamir conversation over the
// snapshot — prover from the maintained tables, verifier seeded from
// the same tables with transcript-derived challenges — and returns the
// recorded proof. Generation is deterministic (same snapshot version ⇒
// bit-identical proof) and self-verifying: the internal verifier checks
// every message before the proof exists.
func (s *Snapshot) GenerateProof(kind QueryKind, params QueryParams) (*fs.Proof, error) {
	if s.ds.sliceHi != 0 {
		return nil, fmt.Errorf("engine: dataset %q is a universe slice; split proofs are assembled by the aggregator", s.ds.name)
	}
	b := s.ProofBinding(kind, params)
	v, err := s.NewVerifier(kind, params, b.RNG())
	if err != nil {
		return nil, err
	}
	p, err := s.NewProver(kind, params)
	if err != nil {
		return nil, err
	}
	return b.Prove(p, v)
}

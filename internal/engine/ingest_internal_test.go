package engine

import (
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// TestShardedIngestMatchesSerial: the parallel scatter kernel must equal
// the serial left-to-right application exactly. Internal test: it forces
// the sharded path via minShardBatch.
func TestShardedIngestMatchesSerial(t *testing.T) {
	f := field.Mersenne()
	const u = 1 << 10
	n := minShardBatch + 1234 // force the sharded path
	ups := stream.UniformDeltas(u, 3, field.NewSplitMix64(11))
	for len(ups) < n {
		ups = append(ups, stream.UnitIncrements(u, n-len(ups), field.NewSplitMix64(12))...)
	}
	serial, err := NewDataset(f, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewDataset(f, u, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	ss, sh := serial.Snapshot(), sharded.Snapshot()
	if ss.Total() != sh.Total() || ss.Updates() != sh.Updates() {
		t.Fatalf("totals differ: (%d,%d) vs (%d,%d)", ss.Total(), ss.Updates(), sh.Total(), sh.Updates())
	}
	for i := range ss.Counts() {
		if ss.Counts()[i] != sh.Counts()[i] || ss.Elems()[i] != sh.Elems()[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

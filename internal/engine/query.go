package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gkr"
)

// QueryKind enumerates the queries a dataset answers. It is defined here
// (rather than in the wire layer) because prover construction is an
// engine concern; package wire aliases these for its frame encoding.
type QueryKind uint8

// The query kinds.
const (
	QuerySelfJoinSize QueryKind = iota + 1
	QueryFk
	QueryRangeSum
	QueryRangeQuery
	QueryIndex
	QueryDictionary
	QueryPredecessor
	QuerySuccessor
	QueryKLargest
	QueryHeavyHitters
	QueryF0
	QueryFmax
	// QueryCircuit runs the GKR protocol for a named circuit family from
	// internal/circuit's registry over the dataset's dense counts; the
	// family name travels in QueryParams.Circuit, its argument in A.
	QueryCircuit
)

// QueryParams carries the per-kind parameters; unused fields are zero.
type QueryParams struct {
	A, B    uint64  // range bounds / point / key / circuit argument
	K       int64   // moment order or k-largest rank
	Phi     float64 // heavy-hitter fraction
	Circuit string  // circuit family name (QueryCircuit only)
}

// NewProver constructs the prover session for one query over the
// snapshot's maintained state. No stream is replayed: the sum-check
// provers borrow the field table, the tree provers borrow the count
// table, and the heavy-hitters threshold comes from the maintained Σδ.
// The resulting conversation transcript is bit-identical to a prover
// that observed the original stream update by update (crosschecked in
// the package tests), for every worker count.
func (s *Snapshot) NewProver(kind QueryKind, params QueryParams) (core.ProverSession, error) {
	if s.ds.sliceHi != 0 {
		// A slice holds only [sliceLo, sliceHi) of the universe; its
		// messages are partials, not a complete transcript. Query it
		// through NewPartialProver behind an aggregator.
		return nil, fmt.Errorf("engine: dataset %q is the slice [%d,%d) of universe %d; whole-transcript provers need the full table",
			s.ds.name, s.ds.sliceLo, s.ds.sliceHi, s.ds.origU)
	}
	f, u, workers := s.ds.f, s.ds.origU, s.ds.workers
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(params.K)
		}
		proto, err := core.NewFk(f, u, k)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		return proto.NewProverFromTable(s.st.elems)
	case QueryRangeSum:
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p, err := proto.NewProverFromTable(s.st.elems)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryRangeQuery:
		proto, err := core.NewRangeQuery(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p, err := proto.NewProverFromCounts(s.st.counts)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryIndex:
		proto, err := core.NewIndex(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p, err := proto.NewProverFromCounts(s.st.counts)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryDictionary:
		proto, err := core.NewDictionary(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p, err := proto.NewProverFromCounts(s.st.counts)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryPredecessor:
		proto, err := core.NewPredecessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p, err := proto.NewProverFromCounts(s.st.counts)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QuerySuccessor:
		proto, err := core.NewSuccessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p, err := proto.NewProverFromCounts(s.st.counts)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryKLargest:
		proto, err := core.NewKLargest(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p, err := proto.NewProverFromCounts(s.st.counts)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(int(params.K))
	case QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p, err := proto.NewProverFromCounts(s.st.counts, s.st.total)
		if err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.Phi)
	case QueryF0:
		proto, err := core.NewF0(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		return proto.NewProverFromCounts(s.st.counts, s.st.total)
	case QueryFmax:
		proto, err := core.NewFmax(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		return proto.NewProverFromCounts(s.st.counts, s.st.total)
	case QueryCircuit:
		return s.NewGKRProver(circuit.Spec{Name: params.Circuit, Arg: params.A})
	default:
		return nil, fmt.Errorf("engine: unknown query kind %d", kind)
	}
}

// NewGKRProver builds the GKR prover session for a named circuit family
// directly from the snapshot's maintained element table — zero stream
// replay, exactly like NewProver for the fixed query kinds. The circuit
// reads the table's first InputSize entries (padded with zeros if the
// family's input outgrows the padded universe), so the transcript is
// bit-identical to a prover built by replaying the original stream, for
// every worker count and across evict→rehydrate cycles.
func (s *Snapshot) NewGKRProver(spec circuit.Spec) (core.ProverSession, error) {
	proto, err := gkr.NewProtocolFor(s.ds.f, spec, s.ds.origU, s.ds.workers)
	if err != nil {
		return nil, err
	}
	return proto.NewProverSession(proto.PadInput(s.st.elems))
}

package engine_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/sumcheck"
)

// sliceBounds returns the S equal slices of the padded universe of u.
func sliceBounds(t *testing.T, u uint64, s int) [][2]uint64 {
	t.Helper()
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	width := params.U / uint64(s)
	out := make([][2]uint64, s)
	for k := range out {
		out[k] = [2]uint64{uint64(k) * width, uint64(k+1) * width}
	}
	return out
}

// scatterBatch routes one global batch to its owning slices, preserving
// batch order within each slice — what the router's ingest fan-out does.
func scatterBatch(ups []stream.Update, bounds [][2]uint64) [][]stream.Update {
	out := make([][]stream.Update, len(bounds))
	for _, up := range ups {
		for k, b := range bounds {
			if up.Index >= b[0] && up.Index < b[1] {
				out[k] = append(out[k], up)
				break
			}
		}
	}
	return out
}

// driveSplit runs the full aggregated conversation over the slice
// sessions with a fixed challenge schedule, returning every combined
// message (opening first).
func driveSplit(t *testing.T, f field.Field, u uint64, comb sumcheck.Combiner, sessions []core.ProverSession, challenges []field.Elem) (*core.SplitAggregator, []core.Msg) {
	t.Helper()
	agg, err := core.NewSplitAggregator(f, u, len(sessions), comb, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]core.Msg, len(sessions))
	for k, sess := range sessions {
		if parts[k], err = sess.Open(); err != nil {
			t.Fatalf("slice %d open: %v", k, err)
		}
	}
	opening, err := agg.Open(parts)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []core.Msg{opening}
	for j := 0; j < agg.Rounds()-1; j++ {
		r := challenges[j]
		var m core.Msg
		if agg.Broadcast() {
			for k, sess := range sessions {
				if parts[k], err = sess.Step(core.Msg{Elems: []field.Elem{r}}); err != nil {
					t.Fatalf("slice %d round %d: %v", k, j+1, err)
				}
			}
			if m, err = agg.Collect(parts); err != nil {
				t.Fatalf("collect round %d: %v", j+1, err)
			}
		} else {
			if m, err = agg.Next(r); err != nil {
				t.Fatalf("tail round %d: %v", j+1, err)
			}
		}
		msgs = append(msgs, m)
	}
	return agg, msgs
}

// TestOpenSliceIdentity pins the slice identity rules: geometry is
// validated, re-attach must match exactly, and slice vs whole-universe
// handles never cross.
func TestOpenSliceIdentity(t *testing.T) {
	e := engine.New(f61, 0)
	const u = 100 // pads to 128
	ds, err := e.OpenSlice("ds", u, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := ds.Slice(); !ok || lo != 32 || hi != 64 {
		t.Fatalf("Slice() = %d,%d,%v", lo, hi, ok)
	}
	if ds.UniverseSize() != u {
		t.Fatalf("UniverseSize() = %d, want the global %d", ds.UniverseSize(), u)
	}
	if again, err := e.OpenSlice("ds", u, 32, 64); err != nil || again != ds {
		t.Fatalf("re-attach: %v", err)
	}
	if _, err := e.OpenSlice("ds", u, 0, 32); err == nil {
		t.Fatal("mismatched bounds attached")
	}
	if _, err := e.Open("ds", u); err == nil {
		t.Fatal("plain Open attached to a slice")
	}
	if _, err := e.Open("whole", u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.OpenSlice("whole", u, 32, 64); err == nil {
		t.Fatal("OpenSlice attached to a whole dataset")
	}
	for _, bad := range [][3]uint64{
		{u, 40, 72},  // not aligned to its width
		{u, 96, 192}, // beyond the padded universe
		{u, 64, 64},  // empty
		{u, 48, 96},  // width 48 is not a power of two
	} {
		if _, err := e.OpenSlice(fmt.Sprintf("bad-%d-%d", bad[1], bad[2]), bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("OpenSlice(%d,[%d,%d)) accepted", bad[0], bad[1], bad[2])
		}
	}
	// Out-of-slice and out-of-universe ingests are refused atomically.
	if err := ds.Ingest([]stream.Update{{Index: 10, Delta: 1}}); err == nil {
		t.Fatal("ingest below the slice accepted")
	}
	if err := ds.Ingest([]stream.Update{{Index: 40, Delta: 1}, {Index: 64, Delta: 1}}); err == nil {
		t.Fatal("ingest beyond the slice accepted")
	}
	if err := ds.Ingest([]stream.Update{{Index: 40, Delta: 2}}); err != nil {
		t.Fatal(err)
	}
	// Whole-transcript provers and proofs are refused on slices.
	snap := ds.Snapshot()
	if _, err := snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{}); err == nil {
		t.Fatal("NewProver served a slice")
	}
	if _, err := snap.GenerateProof(engine.QuerySelfJoinSize, engine.QueryParams{}); err == nil {
		t.Fatal("GenerateProof served a slice")
	}
	// Kinds outside the seam fail typed on the partial path.
	if _, err := snap.NewPartialProver(engine.QueryF0, engine.QueryParams{Phi: 0.1}); !errors.Is(err, engine.ErrNotSplittable) {
		t.Fatalf("F0 partial = %v, want ErrNotSplittable", err)
	}
}

// TestSlicePartialBitIdentical is the engine half of the split-universe
// contract: S engines each owning one slice, fed by a scatter of the
// same global batches, produce — through NewPartialProver sessions and
// a SplitAggregator — the version and the transcript of a single engine
// holding the whole dataset. Covers every seam kind × S ∈ {1, 2, 4}.
func TestSlicePartialBitIdentical(t *testing.T) {
	const u = 200 // pads to 256
	batches := [][]stream.Update{
		stream.UniformDeltas(u, 150, field.NewSplitMix64(71)),
		stream.UniformDeltas(u, 90, field.NewSplitMix64(72)),
		{{Index: 0, Delta: 5}, {Index: 199, Delta: -3}}, // touches only the edge slices
	}

	ref := engine.New(f61, 0)
	refDS, err := ref.Open("ds", u)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := refDS.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	refSnap := refDS.Snapshot()

	kinds := []struct {
		name   string
		kind   engine.QueryKind
		params engine.QueryParams
		comb   sumcheck.Combiner
	}{
		{"selfjoin", engine.QuerySelfJoinSize, engine.QueryParams{}, sumcheck.Power{K: 2}},
		{"f3", engine.QueryFk, engine.QueryParams{K: 3}, sumcheck.Power{K: 3}},
		{"rangesum", engine.QueryRangeSum, engine.QueryParams{A: 17, B: 180}, sumcheck.Product{}},
	}

	for _, s := range []int{1, 2, 4} {
		bounds := sliceBounds(t, u, s)
		engines := make([]*engine.Engine, s)
		snaps := make([]*engine.Snapshot, s)
		for k := range engines {
			engines[k] = engine.New(f61, 0)
			ds, err := engines[k].OpenSlice("ds", u, bounds[k][0], bounds[k][1])
			if err != nil {
				t.Fatal(err)
			}
			// Every global batch is delivered to every owner (possibly as an
			// empty sub-batch) so slice versions track the global version.
			for _, b := range batches {
				sub := scatterBatch(b, bounds)
				if err := ds.Ingest(sub[k]); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := ds.Version(), refDS.Version(); got != want {
				t.Fatalf("S=%d slice %d version %d, want %d", s, k, got, want)
			}
			snaps[k] = ds.Snapshot()
		}

		for _, tc := range kinds {
			params, err := lde.ParamsForUniverse(u, 2)
			if err != nil {
				t.Fatal(err)
			}
			challenges := f61.RandVec(field.NewSplitMix64(500), params.D)

			refProver, err := refSnap.NewProver(tc.kind, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			refMsg, err := refProver.Open()
			if err != nil {
				t.Fatal(err)
			}
			refMsgs := []core.Msg{refMsg}
			for j := 0; j < params.D-1; j++ {
				m, err := refProver.Step(core.Msg{Elems: []field.Elem{challenges[j]}})
				if err != nil {
					t.Fatal(err)
				}
				refMsgs = append(refMsgs, m)
			}

			sessions := make([]core.ProverSession, s)
			for k, snap := range snaps {
				if sessions[k], err = snap.NewPartialProver(tc.kind, tc.params); err != nil {
					t.Fatalf("%s S=%d slice %d: %v", tc.name, s, k, err)
				}
			}
			agg, msgs := driveSplit(t, f61, u, tc.comb, sessions, challenges)
			if agg.Version() != refSnap.Version() {
				t.Fatalf("%s S=%d: aggregated version %d, want %d", tc.name, s, agg.Version(), refSnap.Version())
			}
			if len(msgs) != len(refMsgs) {
				t.Fatalf("%s S=%d: %d messages, want %d", tc.name, s, len(msgs), len(refMsgs))
			}
			for j := range msgs {
				if len(msgs[j].Ints) != len(refMsgs[j].Ints) || len(msgs[j].Elems) != len(refMsgs[j].Elems) {
					t.Fatalf("%s S=%d message %d: shape (%d,%d) ≠ (%d,%d)", tc.name, s, j,
						len(msgs[j].Ints), len(msgs[j].Elems), len(refMsgs[j].Ints), len(refMsgs[j].Elems))
				}
				for c := range msgs[j].Elems {
					if msgs[j].Elems[c] != refMsgs[j].Elems[c] {
						t.Fatalf("%s S=%d message %d elem %d: %d ≠ %d", tc.name, s, j, c,
							msgs[j].Elems[c], refMsgs[j].Elems[c])
					}
				}
			}
		}
	}
}

// TestSliceHandoffMidIngest is the acceptance bound for rebalancing a
// split dataset: a slice released while its owner is still ingesting
// loses no acknowledged batch — every batch acked before Release
// returns is in the adopted state, every racing batch fails in full.
func TestSliceHandoffMidIngest(t *testing.T) {
	const u = 100
	srcDir, dstDir := t.TempDir(), t.TempDir()

	src := engine.New(f61, 0)
	if err := src.SetDataDir(srcDir); err != nil {
		t.Fatal(err)
	}
	ds, err := src.OpenSlice("ds", u, 32, 64)
	if err != nil {
		t.Fatal(err)
	}

	var acked atomic.Uint64 // updates acknowledged to the "client"
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); ; i++ {
			batch := []stream.Update{
				{Index: 32 + i%32, Delta: 1},
				{Index: 63 - i%16, Delta: 2},
			}
			if err := ds.Ingest(batch); err != nil {
				if !errors.Is(err, engine.ErrReleased) {
					t.Errorf("mid-ingest failure other than ErrReleased: %v", err)
				}
				return
			}
			acked.Add(uint64(len(batch)))
		}
	}()

	// Let some batches land, then pull the slice out from under the
	// ingester.
	for acked.Load() < 64 {
		time.Sleep(10 * time.Microsecond)
	}
	n, err := src.Release("ds")
	if err != nil {
		t.Fatal(err)
	}
	<-done

	if got := acked.Load(); n < got {
		t.Fatalf("released checkpoint covers %d updates, but %d were acked", n, got)
	}
	if err := os.Rename(filepath.Join(srcDir, store.DatasetFile("ds")), filepath.Join(dstDir, store.DatasetFile("ds"))); err != nil {
		t.Fatal(err)
	}
	dst := engine.New(f61, 0)
	if err := dst.SetDataDir(dstDir); err != nil {
		t.Fatal(err)
	}
	adopted, err := dst.Adopt("ds")
	if err != nil {
		t.Fatal(err)
	}
	if adopted != n {
		t.Fatalf("adopted %d updates, released checkpoint had %d", adopted, n)
	}
	got, ok := dst.Get("ds")
	if !ok {
		t.Fatal("adopted slice not registered")
	}
	if lo, hi, isSlice := got.Slice(); !isSlice || lo != 32 || hi != 64 {
		t.Fatalf("adopted slice bounds [%d,%d), want [32,64)", lo, hi)
	}
	// The adopted slice keeps serving: ingest within bounds, partials open.
	if err := got.Ingest([]stream.Update{{Index: 40, Delta: 7}}); err != nil {
		t.Fatal(err)
	}
	sess, err := got.Snapshot().NewPartialProver(engine.QuerySelfJoinSize, engine.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(); err != nil {
		t.Fatal(err)
	}
}

// TestSliceEvictRecover: a slice dataset survives the evict/rehydrate
// cycle and a full engine restart (Recover) with its geometry and its
// partial transcript bit-intact.
func TestSliceEvictRecover(t *testing.T) {
	const u = 1 << 12 // pads to 4096; slice width 1024
	dir := t.TempDir()
	e := engine.New(f61, 0)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := e.OpenSlice("ds", u, 1024, 2048)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]stream.Update, 0, 512)
	rng := field.NewSplitMix64(9)
	for i := 0; i < 512; i++ {
		batch = append(batch, stream.Update{Index: 1024 + rng.Uint64()%1024, Delta: int64(rng.Uint64()%7) - 3})
	}
	if err := ds.Ingest(batch); err != nil {
		t.Fatal(err)
	}

	record := func(snap *engine.Snapshot) []core.Msg {
		t.Helper()
		sess, err := snap.NewPartialProver(engine.QueryFk, engine.QueryParams{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Open()
		if err != nil {
			t.Fatal(err)
		}
		msgs := []core.Msg{m}
		challenges := f61.RandVec(field.NewSplitMix64(77), 10)
		for j := 0; j < 10; j++ { // head rounds of a width-1024 slice
			if m, err = sess.Step(core.Msg{Elems: []field.Elem{challenges[j]}}); err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, m)
		}
		return msgs
	}
	same := func(a, b []core.Msg, what string) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d messages vs %d", what, len(a), len(b))
		}
		for j := range a {
			if len(a[j].Elems) != len(b[j].Elems) || len(a[j].Ints) != len(b[j].Ints) {
				t.Fatalf("%s: message %d shape differs", what, j)
			}
			for c := range a[j].Elems {
				if a[j].Elems[c] != b[j].Elems[c] {
					t.Fatalf("%s: message %d elem %d differs", what, j, c)
				}
			}
			for c := range a[j].Ints {
				if a[j].Ints[c] != b[j].Ints[c] {
					t.Fatalf("%s: message %d int %d differs", what, j, c)
				}
			}
		}
	}
	before := record(ds.Snapshot())

	// Squeeze the budget so opening a second slice evicts the first.
	e.SetBudget(1024*16 + 8)
	if _, err := e.OpenSlice("other", u, 0, 1024); err != nil {
		t.Fatal(err)
	}
	same(before, record(ds.Snapshot()), "after evict/rehydrate")

	// Restart: a fresh engine recovers the slice from the checkpoint dir.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	ds2, ok := e2.Get("ds")
	if !ok {
		t.Fatal("slice not recovered")
	}
	if lo, hi, isSlice := ds2.Slice(); !isSlice || lo != 1024 || hi != 2048 {
		t.Fatalf("recovered bounds [%d,%d), want [1024,2048)", lo, hi)
	}
	if ds2.Version() != ds.Version() {
		t.Fatalf("recovered version %d, want %d", ds2.Version(), ds.Version())
	}
	same(before, record(ds2.Snapshot()), "after restart")
}

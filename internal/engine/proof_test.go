package engine_test

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// TestGenerateProofAllKinds is the contract of the replay layer: for
// every query kind, GenerateProof succeeds (generation self-verifies
// against a verifier seeded from the maintained counts), and a
// STREAMING verifier — one that observed the original stream update by
// update, as a real client does — accepts the recorded proof under the
// same binding. That crosschecks count-seeded and stream-fed verifier
// fingerprints in one shot.
func TestGenerateProofAllKinds(t *testing.T) {
	const u = 500
	f := field.Mersenne()
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(42))
	ds, err := engine.NewDataset(f, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	snap := ds.Snapshot()
	kinds := allKinds()
	kinds = append(kinds, struct {
		kind   engine.QueryKind
		params engine.QueryParams
	}{engine.QueryCircuit, engine.QueryParams{Circuit: "F2"}})
	for _, tc := range kinds {
		pf, err := snap.GenerateProof(tc.kind, tc.params)
		if err != nil {
			t.Fatalf("kind %d: GenerateProof: %v", tc.kind, err)
		}
		b := snap.ProofBinding(tc.kind, tc.params)
		if pf.Binding != b || b.Version != 1 {
			t.Fatalf("kind %d: proof binding %+v, want %+v at version 1", tc.kind, pf.Binding, b)
		}
		v, obs, err := newVerifier(f, u, tc.kind, tc.params, b.RNG())
		if err != nil {
			t.Fatalf("kind %d: streaming verifier: %v", tc.kind, err)
		}
		for _, up := range ups {
			if err := obs(up); err != nil {
				t.Fatalf("kind %d: observe: %v", tc.kind, err)
			}
		}
		if err := b.Verify(pf, v); err != nil {
			t.Fatalf("kind %d: streaming verifier rejected the posted proof: %v", tc.kind, err)
		}
	}
}

// TestGenerateProofDeterministic: at a fixed dataset version the proof
// is a pure function of the binding — two independent generations are
// bit-identical.
func TestGenerateProofDeterministic(t *testing.T) {
	const u = 500
	f := field.Mersenne()
	ds, err := engine.NewDataset(f, u, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(u, 300, field.NewSplitMix64(5))); err != nil {
		t.Fatal(err)
	}
	snap := ds.Snapshot()
	a, err := snap.GenerateProof(engine.QueryHeavyHitters, engine.QueryParams{Phi: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.GenerateProof(engine.QueryHeavyHitters, engine.QueryParams{Phi: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("two generations at one version are not bit-identical")
	}
}

// TestProofVersionInvalidation: an ingest between two proofs of the
// same query yields a different binding (fresh challenges) and a
// different proof — and the new proof still verifies for a client that
// observed the whole stream.
func TestProofVersionInvalidation(t *testing.T) {
	const u = 256
	f := field.Mersenne()
	e := engine.New(f, 2)
	ds, err := e.Open("metrics", u)
	if err != nil {
		t.Fatal(err)
	}
	ups1 := stream.UnitIncrements(u, 100, field.NewSplitMix64(8))
	ups2 := stream.UnitIncrements(u, 50, field.NewSplitMix64(9))
	if err := ds.Ingest(ups1); err != nil {
		t.Fatal(err)
	}
	pf1, err := ds.Snapshot().GenerateProof(engine.QuerySelfJoinSize, engine.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(ups2); err != nil {
		t.Fatal(err)
	}
	snap2 := ds.Snapshot()
	pf2, err := snap2.GenerateProof(engine.QuerySelfJoinSize, engine.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if pf1.Version == pf2.Version {
		t.Fatalf("ingest did not rotate the proof version (%d)", pf1.Version)
	}
	if bytes.Equal(pf1.Encode(), pf2.Encode()) {
		t.Fatal("proofs at different versions are identical")
	}
	b2 := snap2.ProofBinding(engine.QuerySelfJoinSize, engine.QueryParams{})
	v, obs, err := newVerifier(f, u, engine.QuerySelfJoinSize, engine.QueryParams{}, b2.RNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range append(append([]stream.Update{}, ups1...), ups2...) {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := b2.Verify(pf2, v); err != nil {
		t.Fatalf("post-ingest proof rejected by a fully-observed verifier: %v", err)
	}
	// The stale proof must not verify under the new binding.
	if err := b2.Verify(pf1, v); err == nil {
		t.Fatal("stale proof accepted under the new version's binding")
	}
}

// TestVersionCounter: the version bumps once per non-empty ingest
// batch, snapshots pin the version they were taken at, and empty
// batches leave it alone.
func TestVersionCounter(t *testing.T) {
	const u = 64
	ds, err := engine.NewDataset(field.Mersenne(), u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Version(); got != 0 {
		t.Fatalf("fresh dataset version %d, want 0", got)
	}
	if err := ds.IngestColumns(nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := ds.Version(); got != 0 {
		t.Fatalf("empty batch bumped version to %d", got)
	}
	if err := ds.IngestColumns([]uint64{1, 2}, []int64{3, 4}); err != nil {
		t.Fatal(err)
	}
	snap := ds.Snapshot()
	if err := ds.IngestColumns([]uint64{5}, []int64{6}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Version(); got != 2 {
		t.Fatalf("version %d after two batches, want 2", got)
	}
	if got := snap.Version(); got != 1 {
		t.Fatalf("snapshot version %d, want the pinned 1", got)
	}
}

// TestVersionSurvivesRecovery: the version counter rides in the
// checkpoint, so a restarted engine resumes from the persisted version
// instead of resurrecting version keys already used for other data.
func TestVersionSurvivesRecovery(t *testing.T) {
	const u = 64
	f := field.Mersenne()
	dir := t.TempDir()
	e := engine.New(f, 1)
	if err := e.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := e.Open("metrics", u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ds.Ingest(stream.UnitIncrements(u, 10, field.NewSplitMix64(uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := engine.New(f, 1)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	ds2, err := e2.Open("metrics", u)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds2.Version(); got != 3 {
		t.Fatalf("recovered version %d, want 3", got)
	}
	if err := ds2.Ingest(stream.UnitIncrements(u, 5, field.NewSplitMix64(77))); err != nil {
		t.Fatal(err)
	}
	if got := ds2.Version(); got != 4 {
		t.Fatalf("post-recovery ingest version %d, want 4", got)
	}
}

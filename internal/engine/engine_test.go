package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/stream"
	"repro/internal/wire"
)

var f61 = field.Mersenne()

// recordingProver wraps a prover session and keeps a copy of every
// message it sends, so two conversations can be compared bit for bit.
type recordingProver struct {
	inner core.ProverSession
	msgs  []core.Msg
}

func (r *recordingProver) record(m core.Msg) core.Msg {
	r.msgs = append(r.msgs, core.Msg{
		Ints:  append([]uint64(nil), m.Ints...),
		Elems: append([]field.Elem(nil), m.Elems...),
	})
	return m
}

func (r *recordingProver) Open() (core.Msg, error) {
	m, err := r.inner.Open()
	if err != nil {
		return m, err
	}
	return r.record(m), nil
}

func (r *recordingProver) Step(ch core.Msg) (core.Msg, error) {
	m, err := r.inner.Step(ch)
	if err != nil {
		return m, err
	}
	return r.record(m), nil
}

func sameMsgs(a, b []core.Msg) error {
	if len(a) != len(b) {
		return fmt.Errorf("round counts differ: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if len(a[r].Ints) != len(b[r].Ints) || len(a[r].Elems) != len(b[r].Elems) {
			return fmt.Errorf("round %d shapes differ", r)
		}
		for i := range a[r].Ints {
			if a[r].Ints[i] != b[r].Ints[i] {
				return fmt.Errorf("round %d int %d differs: %d vs %d", r, i, a[r].Ints[i], b[r].Ints[i])
			}
		}
		for i := range a[r].Elems {
			if a[r].Elems[i] != b[r].Elems[i] {
				return fmt.Errorf("round %d elem %d differs: %d vs %d", r, i, a[r].Elems[i], b[r].Elems[i])
			}
		}
	}
	return nil
}

// newVerifier builds the verifier session for one query kind, with its
// query already set where the protocol wants it pre-conversation.
func newVerifier(f field.Field, u uint64, kind engine.QueryKind, p engine.QueryParams, rng field.RNG) (core.VerifierSession, func(stream.Update) error, error) {
	switch kind {
	case engine.QuerySelfJoinSize, engine.QueryFk:
		k := 2
		if kind == engine.QueryFk {
			k = int(p.K)
		}
		proto, err := core.NewFk(f, u, k)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, nil
	case engine.QueryRangeSum:
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.A, p.B)
	case engine.QueryRangeQuery:
		proto, err := core.NewRangeQuery(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.A, p.B)
	case engine.QueryIndex:
		proto, err := core.NewIndex(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.A)
	case engine.QueryDictionary:
		proto, err := core.NewDictionary(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.A)
	case engine.QueryPredecessor:
		proto, err := core.NewPredecessor(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.A)
	case engine.QuerySuccessor:
		proto, err := core.NewSuccessor(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.A)
	case engine.QueryKLargest:
		proto, err := core.NewKLargest(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(int(p.K))
	case engine.QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, v.SetQuery(p.Phi)
	case engine.QueryF0:
		proto, err := core.NewF0(f, u, p.Phi)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, nil
	case engine.QueryFmax:
		proto, err := core.NewFmax(f, u, p.Phi)
		if err != nil {
			return nil, nil, err
		}
		v := proto.NewVerifier(rng)
		return v, v.Observe, nil
	case engine.QueryCircuit:
		vs, err := gkr.NewVerifierFor(f, circuit.Spec{Name: p.Circuit, Arg: p.A}, u, rng)
		if err != nil {
			return nil, nil, err
		}
		return vs, vs.Observe, nil
	default:
		return nil, nil, fmt.Errorf("unknown kind %d", kind)
	}
}

func allKinds() []struct {
	kind   engine.QueryKind
	params engine.QueryParams
} {
	return []struct {
		kind   engine.QueryKind
		params engine.QueryParams
	}{
		{engine.QuerySelfJoinSize, engine.QueryParams{}},
		{engine.QueryFk, engine.QueryParams{K: 3}},
		{engine.QueryRangeSum, engine.QueryParams{A: 3, B: 200}},
		{engine.QueryRangeQuery, engine.QueryParams{A: 3, B: 200}},
		{engine.QueryIndex, engine.QueryParams{A: 17}},
		{engine.QueryDictionary, engine.QueryParams{A: 17}},
		{engine.QueryPredecessor, engine.QueryParams{A: 99}},
		{engine.QuerySuccessor, engine.QueryParams{A: 99}},
		{engine.QueryKLargest, engine.QueryParams{K: 4}},
		{engine.QueryHeavyHitters, engine.QueryParams{Phi: 0.02}},
		{engine.QueryF0, engine.QueryParams{}},
		{engine.QueryFmax, engine.QueryParams{}},
	}
}

// TestSnapshotTranscriptsMatchReplay is the contract of the whole
// engine: for every query kind and worker count, a prover built from a
// dataset snapshot holds a conversation bit-identical to one built by
// replaying the stream (wire.BuildProver, the old serving path), and
// both are accepted.
func TestSnapshotTranscriptsMatchReplay(t *testing.T) {
	const u = 500 // deliberately not a power of two: exercises padding
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(42))

	for _, workers := range []int{0, 2, -1} {
		ds, err := engine.NewDataset(f61, u, workers)
		if err != nil {
			t.Fatal(err)
		}
		// Ingest in uneven batches, including one per-update drip.
		if err := ds.Ingest(ups[:7]); err != nil {
			t.Fatal(err)
		}
		for _, up := range ups[7:10] {
			if err := ds.Ingest([]stream.Update{up}); err != nil {
				t.Fatal(err)
			}
		}
		if err := ds.Ingest(ups[10:]); err != nil {
			t.Fatal(err)
		}
		snap := ds.Snapshot()
		if snap.Updates() != uint64(len(ups)) {
			t.Fatalf("snapshot reflects %d updates, want %d", snap.Updates(), len(ups))
		}

		for _, c := range allKinds() {
			name := fmt.Sprintf("kind=%d/workers=%d", c.kind, workers)
			seed := uint64(7_000 + uint64(c.kind))

			run := func(p core.ProverSession) ([]core.Msg, error) {
				v, obs, err := newVerifier(f61, u, c.kind, c.params, field.NewSplitMix64(seed))
				if err != nil {
					return nil, err
				}
				for _, up := range ups {
					if err := obs(up); err != nil {
						return nil, err
					}
				}
				rec := &recordingProver{inner: p}
				if _, err := core.Run(rec, v); err != nil {
					return nil, err
				}
				return rec.msgs, nil
			}

			replay, err := wire.BuildProver(f61, u, c.kind, c.params, ups, workers)
			if err != nil {
				t.Fatalf("%s: replay prover: %v", name, err)
			}
			want, err := run(replay)
			if err != nil {
				t.Fatalf("%s: replay conversation: %v", name, err)
			}
			fromSnap, err := snap.NewProver(c.kind, c.params)
			if err != nil {
				t.Fatalf("%s: snapshot prover: %v", name, err)
			}
			got, err := run(fromSnap)
			if err != nil {
				t.Fatalf("%s: snapshot conversation: %v", name, err)
			}
			if err := sameMsgs(want, got); err != nil {
				t.Errorf("%s: transcripts differ: %v", name, err)
			}
		}
	}
}

// TestSnapshotIsolation: a snapshot's view is frozen; later ingestion is
// visible only to later snapshots, and provers from the old snapshot
// still verify against the old stream.
func TestSnapshotIsolation(t *testing.T) {
	const u = 256
	first := stream.UniformDeltas(u, 9, field.NewSplitMix64(5))
	extra := stream.UnitIncrements(u, 300, field.NewSplitMix64(6))

	ds, err := engine.NewDataset(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(first); err != nil {
		t.Fatal(err)
	}
	s1 := ds.Snapshot()
	c1 := s1.Counts()[17]
	if err := ds.Ingest(extra); err != nil {
		t.Fatal(err)
	}
	s2 := ds.Snapshot()

	if s1.Updates() != uint64(len(first)) {
		t.Fatalf("old snapshot grew: %d updates", s1.Updates())
	}
	if s1.Counts()[17] != c1 {
		t.Fatal("old snapshot's counts changed after ingest")
	}
	if s2.Updates() != uint64(len(first)+len(extra)) {
		t.Fatalf("new snapshot has %d updates, want %d", s2.Updates(), len(first)+len(extra))
	}

	// A prover from each snapshot verifies against the matching stream.
	for i, tc := range []struct {
		snap *engine.Snapshot
		ups  []stream.Update
	}{{s1, first}, {s2, append(append([]stream.Update(nil), first...), extra...)}} {
		v, obs, err := newVerifier(f61, u, engine.QuerySelfJoinSize, engine.QueryParams{}, field.NewSplitMix64(900+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, up := range tc.ups {
			if err := obs(up); err != nil {
				t.Fatal(err)
			}
		}
		p, err := tc.snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Run(p, v); err != nil {
			t.Fatalf("snapshot %d rejected: %v", i, err)
		}
	}
}

// TestSnapshotProverRefusesObserve: sessions built over shared state must
// not be able to mutate it.
func TestSnapshotProverRefusesObserve(t *testing.T) {
	const u = 64
	ds, err := engine.NewDataset(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(stream.UnitIncrements(u, 50, field.NewSplitMix64(1))); err != nil {
		t.Fatal(err)
	}
	snap := ds.Snapshot()
	p, err := snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := p.(interface{ Observe(stream.Update) error })
	if !ok {
		t.Fatal("Fk prover lost its Observe method")
	}
	if err := obs.Observe(stream.Update{Index: 1, Delta: 1}); err == nil {
		t.Fatal("snapshot-built prover accepted an update")
	}
	if snap.Counts()[1] != ds.Snapshot().Counts()[1] {
		t.Fatal("shared counts mutated")
	}
}

// TestEngineOpenAttach: Open is create-or-attach, with the universe
// pinned at creation.
func TestEngineOpenAttach(t *testing.T) {
	e := engine.New(f61, 0)
	a, err := e.Open("logs", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Open("logs", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("re-open returned a different dataset")
	}
	if _, err := e.Open("logs", 1<<11); err == nil {
		t.Fatal("universe mismatch accepted")
	}
	if _, err := e.Open("", 1<<10); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, ok := e.Get("logs"); !ok {
		t.Fatal("Get missed an open dataset")
	}
	if names := e.Names(); len(names) != 1 || names[0] != "logs" {
		t.Fatalf("Names = %v", names)
	}
	e.Drop("logs")
	if _, ok := e.Get("logs"); ok {
		t.Fatal("Drop left the dataset registered")
	}
}

// TestIngestValidation: a batch with any out-of-range index is rejected
// atomically.
func TestIngestValidation(t *testing.T) {
	ds, err := engine.NewDataset(f61, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = ds.Ingest([]stream.Update{{Index: 1, Delta: 5}, {Index: 1 << 40, Delta: 1}})
	if err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if ds.Updates() != 0 || ds.Snapshot().Counts()[1] != 0 {
		t.Fatal("rejected batch partially applied")
	}
	if err := ds.IngestColumns([]uint64{1, 2}, []int64{1}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

// TestIngestRejectsPaddedIndices: the bounds check runs against the
// *requested* universe, not the power of two it pads to. At u = 500
// (padded to 512) an index in [500, 512) would land in padding that no
// protocol parameterized by 500 accounts for — it must be rejected,
// atomically, and the error must name the real universe.
func TestIngestRejectsPaddedIndices(t *testing.T) {
	const u = 500 // deliberately not a power of two
	ds, err := engine.NewDataset(f61, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest([]stream.Update{{Index: u - 1, Delta: 1}}); err != nil {
		t.Fatalf("last in-range index rejected: %v", err)
	}
	for _, bad := range []uint64{u, 511} { // both inside the padded table
		err := ds.Ingest([]stream.Update{{Index: 3, Delta: 2}, {Index: bad, Delta: 1}})
		if err == nil {
			t.Fatalf("index %d in the padded range [%d, 512) accepted", bad, u)
		}
		if !strings.Contains(err.Error(), "[0,500)") {
			t.Errorf("error should name the requested universe 500, got: %v", err)
		}
	}
	if ds.Updates() != 1 {
		t.Fatalf("rejected batches partially applied: %d updates", ds.Updates())
	}
	if got := ds.Snapshot().Counts()[3]; got != 0 {
		t.Fatalf("rejected batch leaked a delta: counts[3] = %d", got)
	}
}

// TestConcurrentIngestAndSnapshot hammers one dataset from many
// goroutines — half ingesting, half snapshotting and proving — and is
// meaningful mostly under -race: snapshots must never tear.
func TestConcurrentIngestAndSnapshot(t *testing.T) {
	const (
		u          = 1 << 8
		writers    = 4
		readers    = 4
		iterations = 20
	)
	ds, err := engine.NewDataset(f61, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := field.NewSplitMix64(uint64(100 + w))
			for i := 0; i < iterations; i++ {
				if err := ds.Ingest(stream.UnitIncrements(u, 64, rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				snap := ds.Snapshot()
				// A frozen view must be internally consistent: counts,
				// elems, and total all describe the same epoch.
				var total int64
				for j, c := range snap.Counts() {
					total += c
					if f61.FromInt64(c) != snap.Elems()[j] {
						t.Error("snapshot tore: counts and elems disagree")
						return
					}
				}
				if total != snap.Total() {
					t.Errorf("snapshot tore: Σcounts=%d but Total=%d", total, snap.Total())
					return
				}
				if _, err := snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != 1 {
		t.Errorf("Workers(0) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
	if got := Workers(-1); got != runtime.NumCPU() {
		t.Errorf("Workers(-1) = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
}

// TestForCoversRange checks that every index is visited exactly once and
// that chunk indices are dense and within Chunks().
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, MinGrain - 1, MinGrain, 3 * MinGrain, 4*MinGrain + 17} {
			visited := make([]int32, n)
			maxChunk := int32(-1)
			For(workers, n, func(chunk, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
				for {
					old := atomic.LoadInt32(&maxChunk)
					if int32(chunk) <= old || atomic.CompareAndSwapInt32(&maxChunk, old, int32(chunk)) {
						break
					}
				}
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
			want := Chunks(workers, n)
			if int(maxChunk)+1 != want && n > 0 {
				t.Errorf("workers=%d n=%d: %d chunks used, Chunks() = %d", workers, n, maxChunk+1, want)
			}
			if n == 0 && want != 0 {
				t.Errorf("Chunks(%d, 0) = %d, want 0", workers, want)
			}
		}
	}
}

// TestForSmallInputStaysSerial guards the grain: inputs below MinGrain
// must not fork (chunk 0 only).
func TestForSmallInputStaysSerial(t *testing.T) {
	calls := 0
	For(16, MinGrain-1, func(chunk, lo, hi int) {
		calls++
		if chunk != 0 || lo != 0 || hi != MinGrain-1 {
			t.Errorf("small input forked: chunk=%d [%d,%d)", chunk, lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small input ran %d bodies, want 1", calls)
	}
}

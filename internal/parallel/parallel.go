// Package parallel provides the deterministic fork–join primitives behind
// the prover-side hot paths. The prover work in every protocol of
// Cormode–Thaler–Yi — dense LDE evaluation, per-round sum-check messages,
// table folding, hash-tree levels — is a reduction over a large contiguous
// table, which makes it embarrassingly parallel: the table is split into
// contiguous chunks, each chunk is processed by one goroutine, and the
// per-chunk partial results are combined in chunk order. Because all field
// arithmetic is exact (no floating point), the combined result is
// bit-identical regardless of the worker count; chunk-ordered reduction
// keeps even non-commutative combiners deterministic.
package parallel

import (
	"runtime"
	"sync"
)

// MinGrain is the smallest chunk worth a goroutine. Below this the
// fork–join overhead (≈ a few µs) exceeds the arithmetic saved, so For
// silently degrades to a serial loop. Exported so benchmarks can size
// workloads meaningfully.
const MinGrain = 1 << 11

// Workers resolves a worker-count option shared by every prover in this
// repository: n > 0 is used as given, n == 0 selects the serial path (one
// worker, the default — existing callers keep their exact behavior), and
// n < 0 selects runtime.NumCPU().
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n < 0:
		return runtime.NumCPU()
	default:
		return 1
	}
}

// For splits [0, n) into at most `workers` contiguous chunks and runs
// body(chunk, lo, hi) for each, concurrently when that is worthwhile. The
// chunk index is dense in [0, Chunks(workers, n)), so callers can write
// per-chunk partials into a pre-sized slice and reduce them in chunk
// order. For never runs more than one body on the same chunk, and returns
// only after every body has returned.
//
// For assumes cheap per-index work (one field operation or so) and
// applies the MinGrain floor; when each index is itself a large unit of
// work (e.g. one O(u) polynomial evaluation), use ForGrain with a smaller
// grain.
func For(workers, n int, body func(chunk, lo, hi int)) {
	ForGrain(workers, n, MinGrain, body)
}

// ForGrain is For with an explicit minimum chunk size.
func ForGrain(workers, n, grain int, body func(chunk, lo, hi int)) {
	w := span(workers, n, grain)
	if w <= 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	c := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			body(c, lo, hi)
		}(c, lo, hi)
		c++
	}
	wg.Wait()
}

// Chunks reports how many chunks For(workers, n, …) will use, so callers
// can pre-size their partial-result slices.
func Chunks(workers, n int) int {
	return ChunksGrain(workers, n, MinGrain)
}

// ChunksGrain is Chunks for a ForGrain call with the same grain.
func ChunksGrain(workers, n, grain int) int {
	w := span(workers, n, grain)
	if w <= 1 {
		if n <= 0 {
			return 0
		}
		return 1
	}
	chunk := (n + w - 1) / w
	return (n + chunk - 1) / chunk
}

// span clamps the worker count so every chunk has at least grain
// elements; tiny inputs run serially.
func span(workers, n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	if workers > n/grain {
		workers = n / grain
	}
	return workers
}

package stream

import (
	"bytes"
	"testing"

	"repro/internal/field"
)

func TestApply(t *testing.T) {
	ups := []Update{{0, 5}, {3, 2}, {0, -3}, {7, 1}}
	a, err := Apply(ups, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 0, 0, 2, 0, 0, 0, 1}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
	if _, err := Apply([]Update{{8, 1}}, 8); err == nil {
		t.Error("out-of-universe index accepted")
	}
}

func TestSumDeltas(t *testing.T) {
	if got := SumDeltas([]Update{{0, 5}, {1, -2}, {2, 3}}); got != 6 {
		t.Errorf("SumDeltas = %d, want 6", got)
	}
	if got := SumDeltas(nil); got != 0 {
		t.Errorf("SumDeltas(nil) = %d", got)
	}
}

func TestUniformDeltas(t *testing.T) {
	rng := field.NewSplitMix64(1)
	ups := UniformDeltas(100, 1000, rng)
	if len(ups) != 100 {
		t.Fatalf("len = %d", len(ups))
	}
	for i, u := range ups {
		if u.Index != uint64(i) {
			t.Fatalf("index %d = %d", i, u.Index)
		}
		if u.Delta < 0 || u.Delta > 1000 {
			t.Fatalf("delta %d out of [0,1000]", u.Delta)
		}
	}
	// Deterministic under the same seed.
	again := UniformDeltas(100, 1000, field.NewSplitMix64(1))
	for i := range ups {
		if ups[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestUnitIncrements(t *testing.T) {
	rng := field.NewSplitMix64(2)
	ups := UnitIncrements(50, 500, rng)
	if len(ups) != 500 {
		t.Fatalf("len = %d", len(ups))
	}
	for _, u := range ups {
		if u.Delta != 1 {
			t.Fatalf("delta = %d, want 1", u.Delta)
		}
		if u.Index >= 50 {
			t.Fatalf("index %d out of range", u.Index)
		}
	}
	if SumDeltas(ups) != 500 {
		t.Fatal("unit increments must sum to n")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := field.NewSplitMix64(3)
	ups, err := Zipf(1000, 20000, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Apply(ups, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf mass concentrates at low indices: item 0 should dominate the
	// tail item 999 by a large factor, and the head should hold most mass.
	if a[0] < 50*max64(a[999], 1) {
		t.Errorf("zipf not skewed: a[0]=%d a[999]=%d", a[0], a[999])
	}
	var head int64
	for _, v := range a[:10] {
		head += v
	}
	if head < 20000/4 {
		t.Errorf("top-10 mass %d too small for zipf(1.2)", head)
	}
	if _, err := Zipf(0, 10, 1.0, rng); err == nil {
		t.Error("u=0 accepted")
	}
	if _, err := Zipf(10, 10, 0, rng); err == nil {
		t.Error("s=0 accepted")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestDistinctKV(t *testing.T) {
	rng := field.NewSplitMix64(4)
	pairs, err := DistinctKV(1000, 200, 99, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 200 {
		t.Fatalf("len = %d", len(pairs))
	}
	seen := map[uint64]bool{}
	for i, p := range pairs {
		if seen[p.Key] {
			t.Fatalf("duplicate key %d", p.Key)
		}
		seen[p.Key] = true
		if p.Value > 99 {
			t.Fatalf("value %d out of range", p.Value)
		}
		if i > 0 && pairs[i-1].Key >= p.Key {
			t.Fatal("pairs not sorted by key")
		}
	}
	if _, err := DistinctKV(10, 11, 5, rng); err == nil {
		t.Error("n > u accepted")
	}
	ups := KVUpdates(pairs)
	if len(ups) != len(pairs) {
		t.Fatal("KVUpdates length mismatch")
	}
	if ups[0].Index != pairs[0].Key || ups[0].Delta != int64(pairs[0].Value) {
		t.Fatal("KVUpdates content mismatch")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	rng := field.NewSplitMix64(5)
	ups := UnitIncrements(64, 100, rng)
	ups = append(ups, Update{Index: 3, Delta: -17})
	var buf bytes.Buffer
	if err := Write(&buf, 64, ups); err != nil {
		t.Fatal(err)
	}
	u, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if u != 64 {
		t.Fatalf("u = %d", u)
	}
	if len(got) != len(ups) {
		t.Fatalf("len = %d, want %d", len(got), len(ups))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("record %d = %v, want %v", i, got[i], ups[i])
		}
	}
}

func TestEncodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 16, nil); err != nil {
		t.Fatal(err)
	}
	u, got, err := Read(&buf)
	if err != nil || u != 16 || len(got) != 0 {
		t.Fatalf("empty roundtrip: u=%d len=%d err=%v", u, len(got), err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("XYZ"))); err == nil {
		t.Error("short magic accepted")
	}
	if _, _, err := Read(bytes.NewReader([]byte("BAD!12345678123456781234"))); err == nil {
		t.Error("wrong magic accepted")
	}
	// Valid header claiming one record but truncated body.
	var buf bytes.Buffer
	if err := Write(&buf, 8, []Update{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

// Package stream defines the paper's input model and workload generators.
//
// The input (§2, "Input Model") is a sequence of updates (i, δ): an
// implicit vector a of length u starts at zero and each update performs
// a_i ← a_i + δ. Positive and negative δ are both allowed, which captures
// insertions, deletions, and key–value association. Both the verifier and
// the prover observe the same stream.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Update is one stream element: add Delta to the entry at Index.
type Update struct {
	Index uint64
	Delta int64
}

// RNG is the randomness source for generators (satisfied by
// field.SplitMix64; redeclared here to keep this package dependency-free).
type RNG interface {
	Uint64() uint64
}

// Apply replays updates onto a fresh length-u vector and returns it. It is
// the reference "ground truth" used by tests and by naive baselines; real
// verifiers never materialize this vector.
func Apply(updates []Update, u uint64) ([]int64, error) {
	a := make([]int64, u)
	for _, upd := range updates {
		if upd.Index >= u {
			return nil, fmt.Errorf("stream: index %d outside universe [0,%d)", upd.Index, u)
		}
		a[upd.Index] += upd.Delta
	}
	return a, nil
}

// SumDeltas returns Σ δ over the stream: for insert-only streams this is
// the stream length n used by the heavy-hitters threshold φn.
func SumDeltas(updates []Update) int64 {
	var n int64
	for _, u := range updates {
		n += u.Delta
	}
	return n
}

// UniformDeltas reproduces the workload of the paper's experiments (§5):
// u = n and "the number of occurrences of each item i was picked uniformly
// in the range [0,1000]". It emits exactly one update per index with
// delta uniform in [0, maxDelta].
func UniformDeltas(u uint64, maxDelta int64, rng RNG) []Update {
	out := make([]Update, u)
	for i := uint64(0); i < u; i++ {
		out[i] = Update{Index: i, Delta: int64(rng.Uint64() % uint64(maxDelta+1))}
	}
	return out
}

// UnitIncrements generates n updates each with δ=1 and a uniformly random
// index, the classic insert-only multiset stream (SELF-JOIN SIZE's
// promised form).
func UnitIncrements(u uint64, n int, rng RNG) []Update {
	out := make([]Update, n)
	for i := range out {
		out[i] = Update{Index: rng.Uint64() % u, Delta: 1}
	}
	return out
}

// Zipf generates n unit-increment updates whose indices follow a Zipf
// distribution with exponent s > 0 over [0, u): index k is drawn with
// probability proportional to 1/(k+1)^s. It is used by the skewed
// workloads (heavy hitters, Fmax). The sampler precomputes the cumulative
// distribution, so memory is O(u); keep u modest (≤ 2^24) in tests.
func Zipf(u uint64, n int, s float64, rng RNG) ([]Update, error) {
	if u == 0 || s <= 0 {
		return nil, fmt.Errorf("stream: invalid zipf parameters u=%d s=%v", u, s)
	}
	cdf := make([]float64, u)
	total := 0.0
	for k := uint64(0); k < u; k++ {
		total += 1.0 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	out := make([]Update, n)
	for i := range out {
		// 53-bit uniform in [0,1).
		x := float64(rng.Uint64()>>11) / (1 << 53) * total
		idx := sort.SearchFloat64s(cdf, x)
		if uint64(idx) >= u {
			idx = int(u - 1)
		}
		out[i] = Update{Index: uint64(idx), Delta: 1}
	}
	return out, nil
}

// KVPair is a (key, value) association for DICTIONARY and RANGE-SUM style
// workloads, where every key is distinct.
type KVPair struct {
	Key, Value uint64
}

// DistinctKV draws n distinct keys uniformly from [0, u) and pairs each
// with a value uniform in [0, maxValue]. It returns the pairs sorted by
// key for reproducibility.
func DistinctKV(u uint64, n int, maxValue uint64, rng RNG) ([]KVPair, error) {
	if uint64(n) > u {
		return nil, fmt.Errorf("stream: cannot draw %d distinct keys from universe %d", n, u)
	}
	seen := make(map[uint64]bool, n)
	out := make([]KVPair, 0, n)
	for len(out) < n {
		k := rng.Uint64() % u
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, KVPair{Key: k, Value: rng.Uint64() % (maxValue + 1)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// KVUpdates converts key–value pairs to stream updates (value as delta).
func KVUpdates(pairs []KVPair) []Update {
	out := make([]Update, len(pairs))
	for i, p := range pairs {
		out[i] = Update{Index: p.Key, Delta: int64(p.Value)}
	}
	return out
}

// --- Binary encoding -------------------------------------------------
//
// Streams cross the wire (verifier → cloud upload) and are archived for
// reproducible experiments as a sequence of little-endian (uint64 index,
// int64 delta) records with a small header.

var magic = [4]byte{'S', 'I', 'P', '1'}

// ErrBadFormat reports a malformed encoded stream.
var ErrBadFormat = errors.New("stream: bad encoding")

// Write encodes updates with the universe size to w.
func Write(w io.Writer, u uint64, updates []Update) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], u)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(updates)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	for _, upd := range updates {
		binary.LittleEndian.PutUint64(buf[:8], upd.Index)
		binary.LittleEndian.PutUint64(buf[8:], uint64(upd.Delta))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Read decodes a stream written by Write.
func Read(r io.Reader) (u uint64, updates []Update, err error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	if head != magic {
		return 0, nil, ErrBadFormat
	}
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, nil, err
	}
	u = binary.LittleEndian.Uint64(buf[:8])
	n := binary.LittleEndian.Uint64(buf[8:])
	const maxReasonable = 1 << 32
	if n > maxReasonable {
		return 0, nil, fmt.Errorf("%w: implausible length %d", ErrBadFormat, n)
	}
	updates = make([]Update, n)
	for i := range updates {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadFormat, i, err)
		}
		updates[i].Index = binary.LittleEndian.Uint64(buf[:8])
		updates[i].Delta = int64(binary.LittleEndian.Uint64(buf[8:]))
	}
	return u, updates, nil
}

// Verified matrix multiplication via the GKR/circuit workload (Theorem
// 3, Appendix A): a client streams an n×n matrix A as updates to a
// dataset, then asks the untrusted prover for every entry of C = A·A
// and verifies the whole product while keeping only O(log² u) words —
// far less than the O(n²) it would take to even store A.
//
// The demo runs three acts:
//
//  1. an honest prover, built from the dataset's maintained counts
//     (zero stream replay), whose full output vector is verified and
//     spot-checked against a locally computed product;
//  2. a tampering prover, caught by the layer-by-layer sumcheck;
//  3. a prover whose dataset silently dropped one matrix entry, caught
//     by the verifier's streamed-input check.
//
// Run with: go run ./examples/verifiedmatmul
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/sip"
)

func main() {
	const n = 32        // matrix dimension
	const u = n * n     // the dataset holds A row-major
	f := sip.Mersenne() // Z_p, p = 2^61 - 1

	// The data owner streams A (here: a deterministic test matrix) and
	// keeps only the circuit verifier's logarithmic summary.
	a := make([]int64, u)
	updates := make([]sip.Update, u)
	rng := sip.NewSeededRNG(2011)
	for i := range a {
		a[i] = int64(rng.Uint64()%19) - 9
		updates[i] = sip.Update{Index: uint64(i), Delta: a[i]}
	}
	spec := sip.CircuitSpec{Name: sip.CircuitMatMul, Arg: n}

	// Act 1: honest cloud. One call streams the updates into a dataset,
	// builds the GKR prover from the maintained counts, and verifies
	// every entry of C = A·A.
	outs, stats, err := sip.VerifyCircuit(f, u, updates, spec, sip.NewCryptoRNG())
	if err != nil {
		log.Fatalf("honest prover rejected: %v", err)
	}
	fmt.Printf("verified all %d entries of C = A·A (n = %d): %d rounds, %d bytes of proof traffic\n",
		len(outs), n, stats.Rounds, stats.CommBytes())
	for _, ij := range [][2]int{{0, 0}, {3, 17}, {n - 1, n - 1}} {
		i, j := ij[0], ij[1]
		var want sip.Elem
		for k := 0; k < n; k++ {
			want = f.Add(want, f.Mul(f.FromInt64(a[i*n+k]), f.FromInt64(a[k*n+j])))
		}
		if outs[i*n+j] != want {
			log.Fatalf("C[%d][%d] = %d, want %d", i, j, outs[i*n+j], want)
		}
		fmt.Printf("  spot check C[%d][%d] = %d ✓\n", i, j, outs[i*n+j])
	}

	// Act 2: a cloud that tampers with one sumcheck message.
	runAttack := func(name string, updates []sip.Update, tamper sip.Tamperer) {
		v, err := sip.NewCircuitVerifier(f, spec, u, sip.NewCryptoRNG())
		if err != nil {
			log.Fatal(err)
		}
		for _, up := range updates {
			if err := v.Observe(up); err != nil {
				log.Fatal(err)
			}
		}
		ds, err := sip.NewDataset(f, u, 0)
		if err != nil {
			log.Fatal(err)
		}
		// The cloud's copy of the data may diverge from what the owner
		// streamed — that is exactly what the protocol catches.
		cloudData := updates
		if name == "dropped entry" {
			cloudData = updates[:len(updates)-1]
		}
		if err := ds.Ingest(cloudData); err != nil {
			log.Fatal(err)
		}
		p, err := ds.Snapshot().NewProver(sip.QueryCircuit, sip.QueryParams{Circuit: spec.Name, A: spec.Arg})
		if err != nil {
			log.Fatal(err)
		}
		var session sip.ProverSession = p
		if tamper != nil {
			session = &sip.TamperedProver{P: p, T: tamper}
		}
		if _, err := sip.Run(session, v); !errors.Is(err, sip.ErrRejected) {
			fmt.Printf("  %-24s ACCEPTED — SOUNDNESS FAILURE\n", name)
			os.Exit(1)
		}
		fmt.Printf("  %-24s REJECTED ✓\n", name)
	}
	fmt.Println("dishonest clouds:")
	runAttack("tampered sumcheck", updates, func(r int, m sip.Msg) sip.Msg {
		if r == 2 && len(m.Elems) > 0 {
			m.Elems[0] = f.Add(m.Elems[0], 1)
		}
		return m
	})
	// Act 3: a cloud that silently lost one entry of A.
	runAttack("dropped entry", updates, nil)

	fmt.Println("the whole n³-work product was verified with a logarithmic-space client")
}

// Verified outsourced key-value store — the paper's motivating example
// (§1): "the data owner sends (key, value) pairs to the cloud to be
// stored ... Our protocols allow the cloud to demonstrate that it has
// correctly retrieved the value of a key, as well as more complex
// operations, such as finding the next/previous key, finding the keys
// with large associated values, and computing aggregates."
//
// This example performs exactly those operations against an in-process
// cloud, then shows a tampering cloud being caught.
//
// Run with: go run ./examples/kvstore
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/kvstore"
)

func main() {
	const u = 1 << 16
	f := field.Mersenne()

	// The client budgets 8 verified queries; each uses independent
	// randomness (the paper's multiple-queries remedy).
	client, err := kvstore.NewClient(f, u, 8, field.CryptoRNG{})
	if err != nil {
		log.Fatal(err)
	}
	cloud := kvstore.NewCloud(u)

	// Upload user records: userID → account balance.
	puts := map[uint64]uint64{
		1001: 250, 2048: 9000, 3333: 75, 40000: 1200, 41000: 310, 65000: 42,
	}
	for k, v := range puts {
		if err := client.Put(cloud, k, v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("uploaded %d records; the owner keeps only O(log u) words\n\n", client.Keys())

	// get(2048)
	val, found, stats, err := client.Get(cloud, 2048)
	must(err)
	fmt.Printf("get(2048)        = %d (found=%v)   [%d rounds, %d bytes]\n", val, found, stats.Rounds, stats.CommBytes())

	// get of an absent key: verified "not found".
	_, found, _, err = client.Get(cloud, 5)
	must(err)
	fmt.Printf("get(5)           = not found (found=%v) — verified, not just claimed\n", found)

	// previous/next key.
	prev, _, _, err := client.PrevKey(cloud, 39999)
	must(err)
	fmt.Printf("prev-key(39999)  = %d\n", prev)
	next, _, _, err := client.NextKey(cloud, 41001)
	must(err)
	fmt.Printf("next-key(41001)  = %d\n", next)

	// Range scan and aggregate.
	pairs, _, err := client.Range(cloud, 1000, 4000)
	must(err)
	fmt.Printf("range[1000,4000] = %v\n", pairs)
	sum, _, err := client.SumRange(cloud, 0, u-1)
	must(err)
	fmt.Printf("sum(all)         = %d\n", sum)

	// Keys holding ≥ 40%% of the value mass.
	top, _, err := client.TopKeys(cloud, 0.4)
	must(err)
	fmt.Printf("top-keys(40%%)    = %+v\n\n", top)

	// A cheating cloud: it silently bumps one stored balance.
	for i := range cloud.Raw {
		if cloud.Raw[i].Index == 1001 {
			cloud.Raw[i].Delta += 500
			cloud.Log[i].Delta += 500
		}
	}
	_, _, _, err = client.Get(cloud, 1001)
	if errors.Is(err, core.ErrRejected) {
		fmt.Println("cloud tampered with a record → query REJECTED:")
		fmt.Printf("  %v\n", err)
	} else {
		log.Fatalf("tampering went undetected: %v", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Network monitoring with outsourced aggregation — the workload family
// the paper's §1.1 closes with: "tracking the heavy hitters over network
// data corresponds to the heaviest users or destinations."
//
// An ISP streams flow records to an analytics provider. Using streaming
// interactive proofs, the ISP later verifies — without having stored the
// traffic — three classic traffic statistics:
//
//	F2            traffic skew (self-join size of the destination vector)
//	heavy hitters the destinations receiving ≥ φ of all packets
//	F0            the number of distinct destinations seen
//
// Run with: go run ./examples/netmon
package main

import (
	"fmt"
	"log"

	"repro/internal/stream"
	"repro/sip"
)

func main() {
	const u = 1 << 14 // destination address space (scaled-down IPv4 block)
	const packets = 200000

	// Real traffic is heavy-tailed: a Zipf stream of packet destinations.
	traffic, err := stream.Zipf(u, packets, 1.2, sip.NewSeededRNG(2026))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d packets over %d destinations to the analytics cloud\n\n", packets, u)

	f := sip.Mersenne()

	// 1. Traffic skew: F2 of the destination frequency vector.
	f2, stats, err := sip.VerifySelfJoinSize(f, u, traffic, sip.NewCryptoRNG())
	must(err)
	fmt.Printf("F2 (skew)        = %-12d  verified with %d bytes of proof\n", f2, stats.CommBytes())

	// 2. Heaviest destinations: complete, verified, with exact counts.
	const phi = 0.01
	hitters, stats, err := sip.VerifyHeavyHitters(f, u, traffic, phi, sip.NewCryptoRNG())
	must(err)
	fmt.Printf("heavy hitters    = %d destinations ≥ %.0f%% of traffic (%d bytes of proof)\n",
		len(hitters), phi*100, stats.CommBytes())
	for i, h := range hitters {
		if i == 5 {
			fmt.Printf("                   … and %d more\n", len(hitters)-5)
			break
		}
		fmt.Printf("                   dst %-6d %d packets\n", h.Index, h.Count)
	}

	// 3. Distinct destinations (F0) — exact, which plain streaming cannot
	//    do in sublinear space.
	f0, stats, err := sip.VerifyF0(f, u, traffic, sip.NewCryptoRNG())
	must(err)
	fmt.Printf("distinct dsts    = %-12d  verified with %d bytes of proof\n", f0, stats.CommBytes())

	fmt.Println()
	fmt.Println("All three statistics are exact and verified: the provider cannot")
	fmt.Println("drop packets, hide a heavy destination, or approximate the counts")
	fmt.Println("without being rejected (probability of a successful lie ≈ 1e-16).")
}

func must(err error) {
	if err != nil {
		log.Fatalf("proof rejected: %v", err)
	}
}

// A multi-tenant proving service: several data owners feed one shared
// dataset and each verifies queries over the union — the paper's cloud
// deployment (§1) grown to the "ingest once, prove many" model.
//
// Three parties talk to one sipserver-style engine over real sockets:
//
//	uploader A   ingests the morning's event log into dataset "events"
//	uploader B   ingests the afternoon's — a separate TCP connection
//	auditor      attaches to "events" and runs verified F2, RANGE QUERY
//	             and HEAVY HITTERS — twice, to show the second round of
//	             queries costs the cloud no stream replay
//
// The auditor observed the full stream (that is the verifier's single
// streaming pass); the cloud never re-ingests anything: every prover is
// built from the dataset's maintained tables.
//
// Run with: go run ./examples/shareddataset
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
	"repro/sip"
)

const (
	u       = 1 << 14
	perHalf = 30000
	name    = "events"
)

func main() {
	f := sip.Mersenne()

	// The cloud: a wire server around a shared dataset engine.
	srv := &wire.Server{F: f, Workers: -1, Engine: sip.NewEngine(f, -1), IdleTimeout: time.Minute}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()

	// The day's events, split between two uploaders.
	morning := stream.UnitIncrements(u, perHalf, sip.NewSeededRNG(41))
	afternoon := stream.UnitIncrements(u, perHalf, sip.NewSeededRNG(42))
	all := append(append([]sip.Update(nil), morning...), afternoon...)

	for i, part := range [][]sip.Update{morning, afternoon} {
		c, err := wire.Dial(addr)
		must(err)
		prior, err := c.OpenDataset(name, u)
		must(err)
		after, err := c.Ingest(part)
		must(err)
		fmt.Printf("uploader %c: dataset %q had %d updates, now %d\n", 'A'+i, name, prior, after)
		c.Close()
	}

	// The auditor: observed the whole stream (O(log u) summaries only),
	// attaches by name, and queries — twice.
	auditor, err := wire.Dial(addr)
	must(err)
	defer auditor.Close()
	count, err := auditor.OpenDataset(name, u)
	must(err)
	fmt.Printf("auditor: attached to %q with %d updates ingested by others\n\n", name, count)

	for round := 1; round <= 2; round++ {
		fmt.Printf("--- audit round %d (cloud replays nothing) ---\n", round)

		f2proto, err := sip.NewSelfJoinSize(f, u)
		must(err)
		rqproto, err := sip.NewRangeQuery(f, u)
		must(err)
		hhproto, err := sip.NewHeavyHitters(f, u)
		must(err)
		rng := sip.NewCryptoRNG()
		f2v := f2proto.NewVerifier(rng)
		rqv := rqproto.NewVerifier(rng)
		hhv := hhproto.NewVerifier(rng)
		for _, up := range all {
			must(f2v.Observe(up))
			must(rqv.Observe(up))
			must(hhv.Observe(up))
		}

		stats, err := auditor.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, f2v)
		must(err)
		f2, err := f2v.Result()
		must(err)
		fmt.Printf("F2            = %-12d (%d proof bytes)\n", f2, stats.CommBytes())

		lo, hi := uint64(100), uint64(199)
		must(rqv.SetQuery(lo, hi))
		stats, err = auditor.Query(wire.QueryRangeQuery, wire.QueryParams{A: lo, B: hi}, rqv)
		must(err)
		entries, err := rqv.Result()
		must(err)
		fmt.Printf("range [%d,%d] = %d nonzero entries verified (%d proof bytes)\n", lo, hi, len(entries), stats.CommBytes())

		phi := 0.002
		must(hhv.SetQuery(phi))
		stats, err = auditor.Query(wire.QueryHeavyHitters, wire.QueryParams{Phi: phi}, hhv)
		must(err)
		hhs, threshold, err := hhv.Result()
		must(err)
		fmt.Printf("heavy hitters = %d items ≥ %d occurrences, completeness verified (%d proof bytes)\n\n",
			len(hhs), threshold, stats.CommBytes())
	}
	fmt.Println("every answer verified; a cloud that dropped either uploader's data would be rejected")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

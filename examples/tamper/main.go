// Adversarial prover gallery — the paper's §5 robustness experiment,
// expanded: "We also tried modifying the prover's messages, by changing
// some pieces of the proof, or computing the proof for a slightly
// modified stream. In all cases, the protocols caught the error."
//
// Every attack below is run against the real protocols; the program exits
// non-zero if any lie is accepted.
//
// Run with: go run ./examples/tamper
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/internal/stream"
	"repro/sip"
)

func main() {
	const u = 1 << 12
	f := sip.Mersenne()
	updates := stream.UniformDeltas(u, 1000, sip.NewSeededRNG(13))

	failures := 0
	attack := func(name string, tamper sip.Tamperer, dropData bool) {
		proto, err := sip.NewSelfJoinSize(f, u)
		if err != nil {
			log.Fatal(err)
		}
		v := proto.NewVerifier(sip.NewCryptoRNG())
		p := proto.NewProver()
		for _, up := range updates {
			if err := v.Observe(up); err != nil {
				log.Fatal(err)
			}
		}
		data := updates
		if dropData {
			data = updates[:len(updates)-1] // "missed out some data"
		}
		for _, up := range data {
			if err := p.Observe(up); err != nil {
				log.Fatal(err)
			}
		}
		var session sip.ProverSession = p
		if tamper != nil {
			session = &sip.TamperedProver{P: p, T: tamper}
		}
		_, err = sip.Run(session, v)
		switch {
		case err == nil && tamper == nil && !dropData:
			fmt.Printf("%-36s ACCEPTED (honest baseline)\n", name)
		case errors.Is(err, sip.ErrRejected):
			fmt.Printf("%-36s REJECTED ✓\n", name)
		case err == nil:
			fmt.Printf("%-36s ACCEPTED — SOUNDNESS FAILURE\n", name)
			failures++
		default:
			log.Fatalf("%s: unexpected error: %v", name, err)
		}
	}

	flipElem := func(round, pos int) sip.Tamperer {
		return func(r int, m sip.Msg) sip.Msg {
			if r == round && pos < len(m.Elems) {
				m.Elems[pos]++
			}
			return m
		}
	}

	attack("honest prover", nil, false)
	attack("inflate the claimed answer", flipElem(0, 0), false)
	attack("perturb g1(0)", flipElem(0, 1), false)
	attack("perturb g1(2)", flipElem(0, 3), false)
	attack("perturb a middle-round message", flipElem(6, 1), false)
	attack("perturb the final message", flipElem(11, 2), false)
	attack("prove a stream missing one update", nil, true)
	attack("swap two message coefficients", func(r int, m sip.Msg) sip.Msg {
		if r == 3 && len(m.Elems) >= 2 && m.Elems[0] != m.Elems[1] {
			m.Elems[0], m.Elems[1] = m.Elems[1], m.Elems[0]
		}
		return m
	}, false)
	attack("replay round 1 in round 2", func() sip.Tamperer {
		var saved []sip.Elem
		return func(r int, m sip.Msg) sip.Msg {
			if r == 1 {
				saved = append([]sip.Elem(nil), m.Elems...)
			}
			if r == 2 && saved != nil {
				m.Elems = saved
			}
			return m
		}
	}(), false)

	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d attacks were ACCEPTED — this should never happen\n", failures)
		os.Exit(1)
	}
	fmt.Println("Every dishonest prover was rejected; the honest one was accepted.")
	fmt.Println("This reproduces the §5 robustness experiment.")
}

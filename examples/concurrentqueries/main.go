// Many verified conversations, one connection: the paper's deployment
// regime — a cloud prover amortizing one ingested stream over many
// cheap logarithmic conversations — without the wire layer serializing
// them. Every query below runs on its own multiplexed channel
// (wire.Client.QueryAsync), so a slow proof (F2 costs the prover a full
// table scan) never blocks the cheap ones, and ingestion keeps flowing
// between conversation frames of the in-flight queries.
//
// The demo:
//
//  1. ingest a synthetic event stream into the named dataset "events";
//  2. run a battery of four verified queries serially, timing it;
//  3. run the same battery overlapped on the same connection — four
//     conversations in flight at once, each against its own immutable
//     snapshot — and time that;
//  4. while the overlapped batch is still being issued, ingest another
//     batch of events on the same connection to show upload and proofs
//     interleave.
//
// On a multi-core host the overlapped battery approaches the cost of
// its slowest member instead of the sum; on one core the two coincide.
//
// Run with: go run ./examples/concurrentqueries
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
	"repro/sip"
)

const (
	u    = 1 << 14
	n    = 40000
	name = "events"
)

func main() {
	f := sip.Mersenne()

	// The cloud. Workers: 1 keeps each prover single-threaded so any
	// speedup below comes purely from overlapping whole conversations.
	srv := &wire.Server{F: f, Workers: 1, Engine: sip.NewEngine(f, 1), IdleTimeout: time.Minute}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	// One connection for everything: upload and every conversation.
	client, err := wire.Dial(ln.Addr().String())
	must(err)
	defer client.Close()
	_, err = client.OpenDataset(name, u)
	must(err)

	events := stream.UnitIncrements(u, n, sip.NewSeededRNG(7))
	_, err = client.Ingest(events)
	must(err)
	fmt.Printf("ingested %d events into %q over universe 2^14\n\n", n, name)

	// The battery: one expensive sum-check conversation and three
	// tree-based ones. Each round needs fresh verifiers (a conversation
	// consumes its verifier); they observe the stream locally — that is
	// the data owner's single streaming pass.
	type query struct {
		label  string
		kind   wire.QueryKind
		params wire.QueryParams
	}
	battery := []query{
		{"SELF-JOIN SIZE (F2)", wire.QuerySelfJoinSize, wire.QueryParams{}},
		{"RANGE QUERY [256,355]", wire.QueryRangeQuery, wire.QueryParams{A: 256, B: 355}},
		{"PREDECESSOR(9000)", wire.QueryPredecessor, wire.QueryParams{A: 9000}},
		{"HEAVY HITTERS (φ=0.002)", wire.QueryHeavyHitters, wire.QueryParams{Phi: 0.002}},
	}
	verifiers := func(seed uint64, ups []sip.Update) []sip.VerifierSession {
		f2proto, err := sip.NewSelfJoinSize(f, u)
		must(err)
		rqproto, err := sip.NewRangeQuery(f, u)
		must(err)
		predproto, err := sip.NewPredecessor(f, u)
		must(err)
		hhproto, err := sip.NewHeavyHitters(f, u)
		must(err)
		rng := sip.NewSeededRNG(seed)
		f2v := f2proto.NewVerifier(rng)
		rqv := rqproto.NewVerifier(rng)
		predv := predproto.NewVerifier(rng)
		hhv := hhproto.NewVerifier(rng)
		for _, up := range ups {
			must(f2v.Observe(up))
			must(rqv.Observe(up))
			must(predv.Observe(up))
			must(hhv.Observe(up))
		}
		must(rqv.SetQuery(256, 355))
		must(predv.SetQuery(9000))
		must(hhv.SetQuery(0.002))
		return []sip.VerifierSession{f2v, rqv, predv, hhv}
	}

	// Serial: one conversation at a time.
	vs := verifiers(100, events)
	t0 := time.Now()
	for i, q := range battery {
		_, err := client.Query(q.kind, q.params, vs[i])
		must(err)
	}
	serial := time.Since(t0)
	fmt.Printf("serial battery:     %4d queries verified in %v\n", len(battery), serial.Round(time.Microsecond))

	// Overlapped: all four in flight at once on the same connection,
	// with another ingest interleaved between their frames.
	vs = verifiers(100, events)
	more := stream.UnitIncrements(u, 5000, sip.NewSeededRNG(8))
	t0 = time.Now()
	handles := make([]*wire.QueryHandle, len(battery))
	for i, q := range battery {
		handles[i], err = client.QueryAsync(q.kind, q.params, vs[i])
		must(err)
	}
	count, err := client.Ingest(more) // flows between the conversations' frames
	must(err)
	for i, h := range handles {
		stats, err := h.Wait()
		must(err)
		fmt.Printf("  %-24s ACCEPTED (%d rounds, %d proof bytes)\n", battery[i].label, stats.Rounds, stats.CommBytes())
	}
	overlapped := time.Since(t0)
	fmt.Printf("overlapped battery: %4d queries verified in %v (plus %d events ingested mid-flight, dataset now %d)\n",
		len(battery), overlapped.Round(time.Microsecond), len(more), count)
	fmt.Printf("speedup: %.2fx (expect ~1x on a single core, more with cores)\n\n", float64(serial)/float64(overlapped))

	// The queries issued before the mid-flight ingest proved against the
	// pre-ingest snapshot; a fresh conversation sees the union.
	vs = verifiers(200, append(append([]sip.Update(nil), events...), more...))
	_, err = client.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, vs[0])
	must(err)
	fmt.Println("post-ingest F2 conversation verified over the union — every answer provably complete")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Database range reporting over outsourced data — the paper's §1.1
// motivation for reporting queries: "in database processing a typical
// range query may ask for all people in a given age range, where the
// range of interest is not known until after the database is
// instantiated."
//
// A census-style table (age → aggregate payroll) is outsourced. After the
// upload, the analyst picks age ranges ad hoc and gets verified answers
// to both reporting (RANGE QUERY) and aggregation (RANGE-SUM) questions.
//
// Run with: go run ./examples/rangereport
package main

import (
	"fmt"
	"log"

	"repro/sip"
)

func main() {
	const u = 128 // ages 0..127
	f := sip.Mersenne()

	// (age, salary) records; ages are the keys of the implicit vector, so
	// multiple people of the same age accumulate.
	type person struct {
		age    uint64
		salary int64
	}
	people := []person{
		{23, 4200}, {25, 5100}, {31, 7800}, {31, 6900}, {38, 9100},
		{42, 10400}, {44, 8700}, {55, 12000}, {61, 9900}, {67, 3100},
	}
	var payroll []sip.Update // age → total salary
	var census []sip.Update  // age → head count
	for _, p := range people {
		payroll = append(payroll, sip.Update{Index: p.age, Delta: p.salary})
		census = append(census, sip.Update{Index: p.age, Delta: 1})
	}

	fmt.Println("outsourced 10 records; the analyst stored nothing")
	fmt.Println()

	// The range of interest arrives only now — after the data.
	ranges := [][2]uint64{{25, 44}, {0, 30}, {60, 127}}
	for _, r := range ranges {
		// Who is in the range? (RANGE QUERY on the census vector.)
		entries, _, err := sip.VerifyRangeQuery(f, u, census, r[0], r[1], sip.NewCryptoRNG())
		if err != nil {
			log.Fatalf("range query rejected: %v", err)
		}
		// Total payroll in the range (RANGE-SUM on the payroll vector).
		total, stats, err := sip.VerifyRangeSum(f, u, payroll, r[0], r[1], sip.NewCryptoRNG())
		if err != nil {
			log.Fatalf("range sum rejected: %v", err)
		}
		heads := 0
		for _, e := range entries {
			heads += int(e.Value)
		}
		fmt.Printf("ages %3d–%-3d: %d people across %d distinct ages, payroll %d  [%d proof bytes]\n",
			r[0], r[1], heads, len(entries), total, stats.CommBytes())
	}

	fmt.Println()
	fmt.Println("Each answer is exact and verified; the server cannot omit a person")
	fmt.Println("or shave a salary without the proof being rejected.")
}

// Quickstart: verify an outsourced computation in a dozen lines.
//
// A data owner streams one million updates, keeping only a few dozen
// words of state. An untrusted worker stores the data and computes the
// self-join size (F2). The interactive proof convinces the owner that the
// answer is exactly right — and the whole conversation fits in a few
// hundred bytes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/stream"
	"repro/sip"
)

func main() {
	const u = 1 << 20 // universe: 2^20 possible keys

	// The workload of the paper's §5: one update per key, counts uniform
	// in [0, 1000].
	updates := stream.UniformDeltas(u, 1000, sip.NewSeededRNG(42))

	// One call: stream into both parties, run the conversation, verify.
	f2, stats, err := sip.VerifySelfJoinSize(sip.Mersenne(), u, updates, sip.NewCryptoRNG())
	if err != nil {
		log.Fatalf("proof rejected: %v", err)
	}

	fmt.Printf("stream length:        %d updates\n", len(updates))
	fmt.Printf("verified F2:          %d\n", f2)
	fmt.Printf("conversation:         %d rounds, %d bytes total\n", stats.Rounds, stats.CommBytes())
	fmt.Printf("soundness error:      ~4·log(u)/p ≈ 1e-16 (p = 2^61-1)\n")
	fmt.Println()
	fmt.Println("The verifier never stored the data: it kept ~log(u) words while")
	fmt.Println("streaming, and a dishonest worker — even one that changed a single")
	fmt.Println("update — would have been rejected with overwhelming probability.")
}
